// nscc: the driver CLI for the NSC surface language (src/front/).
//
//   nscc check FILE.nsc                 parse + typecheck; print fn types
//   nscc eval  FILE.nsc [options]       NSC evaluator (Definition 3.1 T/W)
//   nscc run   FILE.nsc [options]       evaluator AND compiled BVRAM,
//                                       differentially (exit 1 on mismatch)
//   nscc dump  FILE.nsc [options]       surface / core / NSA / BVRAM form
//   nscc bench FILE.nsc [options]       static + executed T/W as JSON
//   nscc profile FILE.nsc [options]     source-attributed execution profile
//   nscc serve FILE.nsc [options]       compile-once / run-many query
//                                       service (cache + arenas + batching)
//   nscc fmt   FILE.nsc                 canonical formatting (the printer)
//   nscc doc                            the language reference markdown
//
// Shared options:
//   --input EXPR    add an argument for main (repeatable; parsed with the
//                   expression grammar, so '[1, 2, 3]' or '([1,2], 4)')
//   --opt LEVEL     O0 | O1 | O2                     (default O2)
//   --sched S       naive | eager | staged[:NUM/DEN] (default naive;
//                   staged defaults to eps = 1/2)
//   --fn NAME       entry point (default main)
//   --stage S       dump stage: surface | core | nsa | bvram (default bvram)
//   --stats         dump: also print optimizer pipeline statistics
//   --json PATH     bench: write the JSON there instead of stdout
//   --profile       run/bench: collect and report the execution profile
//   --scale N       bench: synthesize a size-N input for the entry point
//                   (deterministic; replaces declared/--input arguments),
//                   so corpus benches can run at n = 10^6+ without
//                   committing megabyte input literals
//
// bench options:
//   --compare BASELINE.json   diff this run against a committed baseline
//                   (a previous `nscc bench --json` for the same file);
//                   exit 1 when any config regresses executed T/W beyond
//                   --tolerance, traps where the baseline didn't, or
//                   loses eval/compiled agreement
//   --tolerance PCT allowed executed-T/W growth over the baseline
//                   (default 0: the counts are deterministic)
//
// serve options (see docs/serve.md):
//   --requests PATH one request expression per line ('-' = stdin); these
//                   join the module's `input` lines and --input values
//   --repeat K      submit the whole request list K times (default 1)
//   --workers N     worker threads (default: min(cores, 4))
//   --max-batch K   largest segment-descriptor batch (default 64)
//   --no-batch      disable batching (solo runs only)
//   --max-queue N   admission limit on queued requests (default 1024)
//   --fuel N        per-request instruction budget
//   --parallel      run the vector kernels on the thread pool
//   --no-fuse       disable fused super-instructions (also keyed in cache)
//   --stats-json PATH   write the nscc-serve-stats/v2 snapshot there
//
// serve telemetry (all pure observers; see docs/observability.md):
//   --metrics PATH  write the metrics registry as Prometheus text
//                   exposition (includes an nscc_build_info provenance
//                   metric)
//   --events PATH   write the structured event log as JSONL (header line
//                   carries schema + provenance; then one event per line)
//   --trace PATH    write a Chrome trace_event timeline of request spans
//                   (queue-wait / admission / batch-assembly / execute /
//                   replay / split; workers are trace threads, flow
//                   arrows link waits to the runs that answered them)
//   --snapshot-every N  rewrite --metrics and --stats-json after every N
//                   completed requests (0 = only at exit)
//   --slow-ms T     emit a serve.slow event for requests slower than T ms
//   --profile       serve: fold the engine's execution counters (pool
//                   hits, fused groups, ...) into the metrics registry
//
// profile options (see docs/observability.md):
//   --by-line       per-source-line table only (the default prints all views)
//   --by-opcode     per-opcode table only
//   --passes        optimizer pass timing table only
//   --chrome PATH   write a Chrome trace_event JSON (chrome://tracing)
//   --min-attribution PCT   exit 1 if fewer than PCT% of executed
//                   instructions carry surface attribution (the CI gate)
//
// Every diagnostic goes to stderr as file:line:col with a caret snippet;
// malformed input exits 1, it never aborts.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "front/front.hpp"
#include "nsa/from_nsc.hpp"
#include "nsc/eval.hpp"
#include "nsc/typecheck.hpp"
#include "object/value.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "serve/service.hpp"
#include "support/checked.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"

namespace {

using namespace nsc;
namespace F = nsc::front;
namespace L = nsc::lang;

struct Options {
  std::string command;
  std::string file;
  std::vector<std::string> inputs;  // --input expressions
  opt::OptLevel opt = opt::OptLevel::O2;
  opt::WhileSchedule sched = opt::WhileSchedule::naive();
  std::string entry = "main";
  std::string stage = "bvram";
  std::string json_path;
  std::size_t scale = 0;  // bench: synthesize a size-N input (0 = off)
  bool stats = false;
  bool profile = false;    // run/bench: collect the execution profile
  bool by_line = false;    // profile: restrict to the per-line view
  bool by_opcode = false;  // profile: restrict to the per-opcode view
  bool passes = false;     // profile: restrict to the pass-timing view
  std::string chrome_path;
  double min_attribution = -1.0;  // profile: CI gate ([0,100] when set)
  // serve
  std::string requests_path;       // --requests; '-' = stdin
  std::size_t repeat = 1;          // --repeat
  std::size_t workers = 0;         // --workers (0 = auto)
  std::size_t max_batch = 64;      // --max-batch
  std::size_t max_queue = 1024;    // --max-queue
  std::uint64_t fuel = std::uint64_t{1} << 32;  // --fuel
  bool no_batch = false;           // --no-batch
  bool parallel = false;           // --parallel
  bool no_fuse = false;            // --no-fuse
  std::string stats_json_path;     // --stats-json
  // serve telemetry
  std::string metrics_path;        // --metrics (Prometheus exposition)
  std::string events_path;         // --events (JSONL event log)
  std::string trace_path;          // --trace (Chrome trace_event)
  std::size_t snapshot_every = 0;  // --snapshot-every (0 = only at exit)
  std::uint64_t slow_ms = 0;       // --slow-ms (0 = off)
  // bench comparison
  std::string compare_path;        // --compare (baseline bench JSON)
  double tolerance_pct = 0.0;      // --tolerance (allowed T/W growth %)
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s {check|eval|run|dump|bench|profile|serve|fmt} "
               "FILE.nsc "
               "[--input EXPR] [--opt O0|O1|O2] "
               "[--sched naive|eager|staged[:N/D]] [--fn NAME] "
               "[--stage surface|core|nsa|bvram] [--stats] [--json PATH] "
               "[--scale N] [--profile] [--by-line] [--by-opcode] [--passes] "
               "[--chrome PATH] [--min-attribution PCT] "
               "[--requests PATH] [--repeat K] [--workers N] [--max-batch K] "
               "[--no-batch] [--max-queue N] [--fuel N] [--parallel] "
               "[--no-fuse] [--stats-json PATH] [--metrics PATH] "
               "[--events PATH] [--trace PATH] [--snapshot-every N] "
               "[--slow-ms T] [--compare BASELINE.json] [--tolerance PCT]\n"
               "       %s doc\n",
               argv0, argv0);
  std::exit(2);
}

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "nscc: %s\n", message.c_str());
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Options o;
  o.command = argv[1];
  int i = 2;
  if (o.command != "doc") {
    if (i >= argc) usage(argv[0]);
    o.file = argv[i++];
  }
  auto need_value = [&](const char* flag) -> std::string {
    if (i >= argc) fail(std::string(flag) + " needs a value");
    return argv[i++];
  };
  while (i < argc) {
    const std::string arg = argv[i++];
    if (arg == "--input") {
      o.inputs.push_back(need_value("--input"));
    } else if (arg == "--opt") {
      const std::string v = need_value("--opt");
      if (v == "O0") {
        o.opt = opt::OptLevel::O0;
      } else if (v == "O1") {
        o.opt = opt::OptLevel::O1;
      } else if (v == "O2") {
        o.opt = opt::OptLevel::O2;
      } else {
        fail("unknown --opt level '" + v + "' (use O0, O1 or O2)");
      }
    } else if (arg == "--sched") {
      const std::string v = need_value("--sched");
      if (v == "naive") {
        o.sched = opt::WhileSchedule::naive();
      } else if (v == "eager") {
        o.sched = opt::WhileSchedule::eager();
      } else if (v == "staged" || v.rfind("staged:", 0) == 0) {
        Rational eps{1, 2};
        if (v.size() > 7) {
          const std::string spec = v.substr(7);
          // Strict digits[/digits] syntax: std::stoull would silently wrap
          // a negative component instead of rejecting it.
          const std::size_t slash = spec.find('/');
          const std::string num_s =
              slash == std::string::npos ? spec : spec.substr(0, slash);
          const std::string den_s =
              slash == std::string::npos ? "1" : spec.substr(slash + 1);
          auto all_digits = [](const std::string& s) {
            if (s.empty() || s.size() > 18) return false;
            for (const char c : s) {
              if (c < '0' || c > '9') return false;
            }
            return true;
          };
          if (!all_digits(num_s) || !all_digits(den_s)) {
            fail("bad staged eps '" + spec + "' (use NUM or NUM/DEN)");
          }
          eps = {std::stoull(num_s), std::stoull(den_s)};
          if (eps.den == 0 || eps.num == 0) {
            fail("staged eps must be a positive rational");
          }
        }
        o.sched = opt::WhileSchedule::staged(eps);
      } else {
        fail("unknown --sched '" + v +
             "' (use naive, eager, or staged[:N/D])");
      }
    } else if (arg == "--fn") {
      o.entry = need_value("--fn");
    } else if (arg == "--stage") {
      o.stage = need_value("--stage");
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg == "--json") {
      o.json_path = need_value("--json");
    } else if (arg == "--scale") {
      const std::string v = need_value("--scale");
      if (v.empty() || v.size() > 12 ||
          v.find_first_not_of("0123456789") != std::string::npos) {
        fail("bad --scale '" + v + "' (expected a positive size)");
      }
      o.scale = static_cast<std::size_t>(std::stoull(v));
      if (o.scale == 0) fail("--scale must be positive");
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--by-line") {
      o.by_line = true;
    } else if (arg == "--by-opcode") {
      o.by_opcode = true;
    } else if (arg == "--passes") {
      o.passes = true;
    } else if (arg == "--chrome") {
      o.chrome_path = need_value("--chrome");
    } else if (arg == "--min-attribution") {
      const std::string v = need_value("--min-attribution");
      try {
        o.min_attribution = std::stod(v);
      } catch (...) {
        fail("bad --min-attribution '" + v + "' (expected a percentage)");
      }
      if (o.min_attribution < 0.0 || o.min_attribution > 100.0) {
        fail("--min-attribution must be in [0, 100]");
      }
    } else if (arg == "--requests") {
      o.requests_path = need_value("--requests");
    } else if (arg == "--repeat" || arg == "--workers" ||
               arg == "--max-batch" || arg == "--max-queue" ||
               arg == "--fuel") {
      const std::string v = need_value(arg.c_str());
      if (v.empty() || v.size() > 18 ||
          v.find_first_not_of("0123456789") != std::string::npos) {
        fail("bad " + arg + " '" + v + "' (expected a nonnegative integer)");
      }
      const std::uint64_t n = std::stoull(v);
      if (arg == "--repeat") {
        if (n == 0) fail("--repeat must be positive");
        o.repeat = static_cast<std::size_t>(n);
      } else if (arg == "--workers") {
        o.workers = static_cast<std::size_t>(n);
      } else if (arg == "--max-batch") {
        if (n == 0) fail("--max-batch must be positive");
        o.max_batch = static_cast<std::size_t>(n);
      } else if (arg == "--max-queue") {
        if (n == 0) fail("--max-queue must be positive");
        o.max_queue = static_cast<std::size_t>(n);
      } else {
        if (n == 0) fail("--fuel must be positive");
        o.fuel = n;
      }
    } else if (arg == "--no-batch") {
      o.no_batch = true;
    } else if (arg == "--parallel") {
      o.parallel = true;
    } else if (arg == "--no-fuse") {
      o.no_fuse = true;
    } else if (arg == "--stats-json") {
      o.stats_json_path = need_value("--stats-json");
    } else if (arg == "--metrics") {
      o.metrics_path = need_value("--metrics");
    } else if (arg == "--events") {
      o.events_path = need_value("--events");
    } else if (arg == "--trace") {
      o.trace_path = need_value("--trace");
    } else if (arg == "--snapshot-every" || arg == "--slow-ms") {
      const std::string v = need_value(arg.c_str());
      if (v.empty() || v.size() > 18 ||
          v.find_first_not_of("0123456789") != std::string::npos) {
        fail("bad " + arg + " '" + v + "' (expected a nonnegative integer)");
      }
      if (arg == "--snapshot-every") {
        o.snapshot_every = static_cast<std::size_t>(std::stoull(v));
      } else {
        o.slow_ms = std::stoull(v);
      }
    } else if (arg == "--compare") {
      o.compare_path = need_value("--compare");
    } else if (arg == "--tolerance") {
      const std::string v = need_value("--tolerance");
      try {
        o.tolerance_pct = std::stod(v);
      } catch (...) {
        fail("bad --tolerance '" + v + "' (expected a percentage)");
      }
      if (o.tolerance_pct < 0.0) fail("--tolerance must be nonnegative");
    } else {
      fail("unknown option '" + arg + "'");
    }
  }
  return o;
}

const char* sched_name(const opt::WhileSchedule& s) {
  switch (s.kind) {
    case opt::WhileScheduleKind::Naive: return "naive";
    case opt::WhileScheduleKind::Eager: return "eager";
    case opt::WhileScheduleKind::Staged: return "staged";
  }
  return "?";
}

const char* opt_name(opt::OptLevel l) {
  switch (l) {
    case opt::OptLevel::O0: return "O0";
    case opt::OptLevel::O1: return "O1";
    case opt::OptLevel::O2: return "O2";
  }
  return "?";
}

const F::ResolvedFn& entry_of(const F::ResolvedModule& mod,
                              const Options& o) {
  if (o.entry == "main") return mod.main();
  const F::ResolvedFn* f = mod.find(o.entry);
  if (f == nullptr) fail("no function named '" + o.entry + "' in " + o.file);
  return *f;
}

/// The arguments to feed the entry point: every `input` declaration in the
/// module plus every --input expression, all typechecked against dom.
std::vector<ValueRef> gather_inputs(const F::ResolvedModule& mod,
                                    const F::ResolvedFn& entry,
                                    const Options& o) {
  std::vector<ValueRef> values;
  for (const auto& in : mod.inputs) {
    // `input` declarations are validated against main at resolve time;
    // under --fn they only apply when the type fits the chosen entry.
    if (!Type::equal(in.type, entry.dom)) continue;
    values.push_back(L::eval(in.term).value);
  }
  for (std::size_t k = 0; k < o.inputs.size(); ++k) {
    const F::SourceFile src("--input " + std::to_string(k + 1), o.inputs[k]);
    const F::ExprPtr e = F::parse_expression(src);
    const F::ResolvedInput in = F::resolve_expression(e, src);
    if (!Type::equal(in.type, entry.dom)) {
      fail("--input value has type " + in.type->show() + " but " +
           entry.name + " expects " + entry.dom->show());
    }
    values.push_back(L::eval(in.term).value);
  }
  return values;
}

/// Deterministic size-parameterized input synthesis for `bench --scale N`:
/// a sequence of nats gets N pseudorandom elements; a nested sequence
/// splits N as sqrt(N) outer x sqrt(N) inner so the total footprint stays
/// ~N elements; scalars draw small values.  Same seed, same value -- runs
/// are reproducible across machines.
ValueRef synthesize_value(const TypeRef& t, std::size_t n, SplitMix64& rng) {
  switch (t->kind()) {
    case TypeKind::Unit:
      return Value::unit();
    case TypeKind::Nat:
      return Value::nat(rng.below(1024));
    case TypeKind::Prod: {
      ValueRef first = synthesize_value(t->left(), n, rng);
      return Value::pair(std::move(first),
                         synthesize_value(t->right(), n, rng));
    }
    case TypeKind::Sum:
      return rng.coin() ? Value::in1(synthesize_value(t->left(), n, rng))
                        : Value::in2(synthesize_value(t->right(), n, rng));
    case TypeKind::Seq: {
      if (t->elem()->is(TypeKind::Nat)) {
        return Value::nat_seq(rng.vec(n, 1024));
      }
      const std::size_t m = std::max<std::size_t>(1, isqrt(n));
      std::vector<ValueRef> elems;
      elems.reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        elems.push_back(synthesize_value(t->elem(), m, rng));
      }
      return Value::seq(std::move(elems));
    }
  }
  fail("cannot synthesize a value of this type");
}

struct RunOutcome {
  bool trapped = false;
  std::string error;
  ValueRef value;
  Cost cost;
};

RunOutcome eval_outcome(const F::ResolvedFn& f, const ValueRef& arg) {
  RunOutcome o;
  try {
    auto r = L::apply_fn(f.fn, arg);
    o.value = r.value;
    o.cost = r.cost;
  } catch (const Error& e) {
    o.trapped = true;
    o.error = e.what();
  }
  return o;
}

RunOutcome compiled_outcome(const bvram::Program& program,
                            const F::ResolvedFn& f, const ValueRef& arg,
                            const bvram::RunConfig& cfg = {},
                            bvram::RunResult* raw = nullptr) {
  RunOutcome o;
  try {
    auto r = sa::run_compiled(program, f.dom, f.cod, arg, cfg, raw);
    o.value = r.value;
    o.cost = r.cost;
  } catch (const Error& e) {
    o.trapped = true;
    o.error = e.what();
  }
  return o;
}

/// The RunConfig for a profiled execution: the profiler needs the trace
/// for the Chrome timeline and instruction-order views.
bvram::RunConfig profile_config() {
  bvram::RunConfig cfg;
  cfg.profile = true;
  cfg.record_trace = true;
  return cfg;
}

void print_pass_timings(const opt::PipelineStats& stats) {
  std::printf("optimizer: instrs %zu -> %zu, regs %zu -> %zu, %zu rounds, "
              "%.3f ms total\n",
              stats.instrs_before, stats.instrs_after, stats.regs_before,
              stats.regs_after, stats.rounds,
              static_cast<double>(stats.wall_ns) / 1e6);
  std::printf("%-14s %14s %16s %12s\n", "pass", "applications",
              "instrs removed", "wall(ms)");
  for (const auto& ps : stats.passes) {
    std::printf("%-14s %14zu %16zu %12.3f\n", ps.name.c_str(),
                ps.applications, ps.instrs_removed,
                static_cast<double>(ps.wall_ns) / 1e6);
  }
}

void print_outcome(const char* label, const RunOutcome& o) {
  if (o.trapped) {
    std::printf("%s: trap (%s)\n", label, o.error.c_str());
  } else {
    std::printf("%s: %s  (T=%llu W=%llu)\n", label, o.value->show().c_str(),
                static_cast<unsigned long long>(o.cost.time),
                static_cast<unsigned long long>(o.cost.work));
  }
}

int cmd_check(const F::SourceFile& src, const Options&) {
  const F::ResolvedModule mod = F::compile_file(src);
  for (const auto& f : mod.fns) {
    std::printf("fn %-16s : %s -> %s\n", f.name.c_str(),
                f.dom->show().c_str(), f.cod->show().c_str());
  }
  for (const auto& in : mod.inputs) {
    std::printf("input            : %s\n", in.type->show().c_str());
  }
  return 0;
}

int cmd_eval(const F::SourceFile& src, const Options& o) {
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& entry = entry_of(mod, o);
  const auto inputs = gather_inputs(mod, entry, o);
  if (inputs.empty()) fail("no inputs: add `input ...` lines or --input");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::printf("input %zu: %s\n", i, inputs[i]->show().c_str());
    print_outcome("  nsc eval", eval_outcome(entry, inputs[i]));
  }
  return 0;
}

int cmd_run(const F::SourceFile& src, const Options& o) {
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& entry = entry_of(mod, o);
  const auto inputs = gather_inputs(mod, entry, o);
  if (inputs.empty()) fail("no inputs: add `input ...` lines or --input");
  const bvram::Program program = sa::compile_nsc(entry.fn, o.opt, o.sched);
  std::printf("%s : %s -> %s  [%s, %s: %zu regs, %zu instrs]\n",
              entry.name.c_str(), entry.dom->show().c_str(),
              entry.cod->show().c_str(), opt_name(o.opt),
              sched_name(o.sched), program.num_regs, program.code.size());
  bool ok = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::printf("input %zu: %s\n", i, inputs[i]->show().c_str());
    const RunOutcome ev = eval_outcome(entry, inputs[i]);
    bvram::RunResult raw;
    const RunOutcome mc =
        o.profile
            ? compiled_outcome(program, entry, inputs[i], profile_config(),
                               &raw)
            : compiled_outcome(program, entry, inputs[i]);
    print_outcome("  nsc eval", ev);
    print_outcome("  compiled", mc);
    const bool agree = ev.trapped == mc.trapped &&
                       (ev.trapped || Value::equal(ev.value, mc.value));
    if (!agree) ok = false;
    std::printf("  agree: %s\n", agree ? "yes" : "NO");
    if (o.profile && !mc.trapped) {
      const obs::Profile prof = obs::Profile::build(program, raw);
      std::printf("  profile: %.1f%% attributed; engine: %s\n",
                  100.0 * prof.attributed_frac,
                  prof.render_engine().c_str());
      std::printf("%s", prof.render_by_line().c_str());
    }
  }
  if (!ok) std::fprintf(stderr, "nscc run: evaluator/compiled MISMATCH\n");
  return ok ? 0 : 1;
}

int cmd_dump(const F::SourceFile& src, const Options& o) {
  if (o.stage == "surface") {
    std::fputs(F::print_module(F::parse_module(src)).c_str(), stdout);
    return 0;
  }
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& entry = entry_of(mod, o);
  if (o.stage == "core") {
    std::printf("%s\n", entry.fn->show().c_str());
    return 0;
  }
  if (o.stage == "nsa") {
    std::printf("%s\n", nsa::from_closed_func(entry.fn)->show().c_str());
    return 0;
  }
  if (o.stage != "bvram") {
    fail("unknown --stage '" + o.stage +
         "' (use surface, core, nsa or bvram)");
  }
  opt::PipelineStats stats;
  const bvram::Program program =
      sa::compile_nsc(entry.fn, o.opt, o.sched, &stats);
  std::printf("; %s -> %s  [%s, %s]\n", entry.dom->show().c_str(),
              entry.cod->show().c_str(), opt_name(o.opt),
              sched_name(o.sched));
  std::fputs(program.disassemble().c_str(), stdout);
  if (o.stats) {
    std::printf("\n%s", stats.show().c_str());
  }
  return 0;
}

void json_escape(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
  out << '"';
}

/// `bench --compare`: diff a fresh bench report against a committed
/// baseline (a previous `nscc bench --json` for the same file).  The
/// executed T/W counts are deterministic functions of (program, input,
/// config), so the default tolerance is 0; --tolerance PCT loosens the
/// T/W gates for workloads whose inputs legitimately drift.  Gates:
///
///   * executed_T / executed_W may not exceed baseline * (1 + PCT/100)
///     for any (opt, sched, input) present in the baseline;
///   * a run that didn't trap in the baseline may not trap now;
///   * eval/compiled agreement may not be lost.
///
/// Improvements (lower T/W) pass and are reported.  Configs in the
/// baseline but missing from the fresh report fail the comparison.
int compare_bench(const std::string& fresh_text, const Options& o) {
  std::ifstream f(o.compare_path, std::ios::binary);
  if (!f) fail("cannot read " + o.compare_path);
  std::stringstream buf;
  buf << f.rdbuf();
  json::Value fresh, base;
  try {
    fresh = json::parse(fresh_text);
    base = json::parse(buf.str());
  } catch (const Error& e) {
    fail(std::string("--compare: ") + e.what());
  }

  const auto config_key = [](const json::Value& c) {
    return c.at("opt").as_string() + "/" + c.at("sched").as_string();
  };
  int regressions = 0;
  const auto regress = [&](const std::string& what) {
    std::fprintf(stderr, "bench --compare: %s\n", what.c_str());
    ++regressions;
  };

  const json::Value& base_cfgs = base.at("configs");
  for (const json::Value& bc : base_cfgs.items) {
    const std::string key = config_key(bc);
    const json::Value* fc = nullptr;
    for (const json::Value& c : fresh.at("configs").items) {
      if (config_key(c) == key) {
        fc = &c;
        break;
      }
    }
    if (fc == nullptr) {
      regress("config " + key + " is in the baseline but not this run");
      continue;
    }
    const json::Value& base_runs = bc.at("runs");
    const json::Value& fresh_runs = fc->at("runs");
    if (fresh_runs.items.size() < base_runs.items.size()) {
      regress("config " + key + " ran " +
              std::to_string(fresh_runs.items.size()) + " inputs, baseline " +
              std::to_string(base_runs.items.size()));
      continue;
    }
    const double factor = 1.0 + o.tolerance_pct / 100.0;
    for (std::size_t i = 0; i < base_runs.items.size(); ++i) {
      const json::Value& br = base_runs.items[i];
      const json::Value& fr = fresh_runs.items[i];
      const std::string at = key + " input " + std::to_string(i);
      if (br.at("trap").as_bool() != fr.at("trap").as_bool()) {
        regress(at + ": trap " +
                (fr.at("trap").as_bool() ? "appeared" : "disappeared"));
      }
      if (br.at("agree").as_bool() && !fr.at("agree").as_bool()) {
        regress(at + ": eval/compiled agreement lost");
      }
      for (const char* dim : {"executed_T", "executed_W"}) {
        const std::uint64_t b = br.at(dim).as_u64();
        const std::uint64_t v = fr.at(dim).as_u64();
        if (static_cast<double>(v) > static_cast<double>(b) * factor) {
          regress(at + ": " + dim + " " + std::to_string(v) +
                  " exceeds baseline " + std::to_string(b) + " (+" +
                  std::to_string(o.tolerance_pct) + "% allowed)");
        } else if (v < b) {
          std::printf("bench --compare: %s: %s improved %llu -> %llu\n",
                      at.c_str(), dim, static_cast<unsigned long long>(b),
                      static_cast<unsigned long long>(v));
        }
      }
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench --compare: %d regression%s vs %s\n",
                 regressions, regressions == 1 ? "" : "s",
                 o.compare_path.c_str());
    return 1;
  }
  std::printf("bench --compare: no regressions vs %s (%zu configs, "
              "tolerance %.1f%%)\n",
              o.compare_path.c_str(), base_cfgs.items.size(),
              o.tolerance_pct);
  return 0;
}

int cmd_bench(const F::SourceFile& src, const Options& o) {
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& entry = entry_of(mod, o);
  auto inputs = gather_inputs(mod, entry, o);
  if (o.scale > 0) {
    SplitMix64 rng(42);
    inputs.assign(1, synthesize_value(entry.dom, o.scale, rng));
  }
  struct Config {
    opt::OptLevel level;
    opt::WhileSchedule sched;
  };
  const Config configs[] = {
      {opt::OptLevel::O0, opt::WhileSchedule::naive()},
      {opt::OptLevel::O1, opt::WhileSchedule::naive()},
      {opt::OptLevel::O2, opt::WhileSchedule::naive()},
      {opt::OptLevel::O2, opt::WhileSchedule::eager()},
      {opt::OptLevel::O2, opt::WhileSchedule::staged({1, 2})},
  };
  std::ostringstream out;
  out << "{\n  \"file\": ";
  json_escape(out, src.name());
  out << ",\n  \"entry\": ";
  json_escape(out, entry.name);
  out << ",\n  \"type\": ";
  json_escape(out, entry.dom->show() + " -> " + entry.cod->show());
  out << ",\n  \"inputs\": " << inputs.size()
      << ",\n  \"scale\": " << o.scale << ",\n  \"configs\": [\n";
  bool first_cfg = true;
  for (const auto& cfg : configs) {
    opt::PipelineStats stats;
    const bvram::Program program =
        sa::compile_nsc(entry.fn, cfg.level, cfg.sched, &stats);
    if (!first_cfg) out << ",\n";
    first_cfg = false;
    out << "    {\"opt\": \"" << opt_name(cfg.level) << "\", \"sched\": \""
        << sched_name(cfg.sched) << "\", \"static_instrs\": "
        << program.code.size() << ", \"regs\": " << program.num_regs
        << ", \"runs\": [";
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const RunOutcome ev = eval_outcome(entry, inputs[i]);
      bvram::RunResult raw;
      const RunOutcome mc =
          o.profile ? compiled_outcome(program, entry, inputs[i],
                                       profile_config(), &raw)
                    : compiled_outcome(program, entry, inputs[i]);
      if (i != 0) out << ", ";
      out << "{\"input\": " << i << ", \"eval_T\": " << ev.cost.time
          << ", \"eval_W\": " << ev.cost.work
          << ", \"executed_T\": " << mc.cost.time
          << ", \"executed_W\": " << mc.cost.work << ", \"trap\": "
          << ((ev.trapped || mc.trapped) ? "true" : "false")
          << ", \"agree\": "
          << ((ev.trapped == mc.trapped &&
               (ev.trapped || Value::equal(ev.value, mc.value)))
                  ? "true"
                  : "false");
      if (o.profile && !mc.trapped) {
        const obs::Profile prof = obs::Profile::build(program, raw);
        out << ", \"profile\": {\"attributed_frac\": "
            << prof.attributed_frac << ", \"engine_wall_ns\": "
            << prof.engine.wall_ns << ", \"pool_hits\": "
            << prof.engine.pool_hits << ", \"pool_misses\": "
            << prof.engine.pool_misses << ", \"inplace_hits\": "
            << prof.engine.inplace_hits << ", \"move_swaps\": "
            << prof.engine.move_swaps << ", \"fused_groups\": "
            << prof.engine.fused_groups << ", \"fused_instrs\": "
            << prof.engine.fused_instrs << ", \"fused_elided\": "
            << prof.engine.fused_elided << ", \"fused_fallbacks\": "
            << prof.engine.fused_fallbacks << "}";
      }
      out << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  if (o.json_path.empty()) {
    std::fputs(out.str().c_str(), stdout);
  } else {
    std::ofstream f(o.json_path, std::ios::binary);
    if (!f) fail("cannot write " + o.json_path);
    f << out.str();
    std::printf("wrote %s\n", o.json_path.c_str());
  }
  if (!o.compare_path.empty()) return compare_bench(out.str(), o);
  return 0;
}

int cmd_profile(const F::SourceFile& src, const Options& o) {
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& entry = entry_of(mod, o);
  const auto inputs = gather_inputs(mod, entry, o);
  if (inputs.empty()) fail("no inputs: add `input ...` lines or --input");
  opt::PipelineStats stats;
  const bvram::Program program =
      sa::compile_nsc(entry.fn, o.opt, o.sched, &stats);
  std::printf("%s : %s -> %s  [%s, %s: %zu regs, %zu instrs, "
              "%.1f%% static attribution]\n",
              entry.name.c_str(), entry.dom->show().c_str(),
              entry.cod->show().c_str(), opt_name(o.opt),
              sched_name(o.sched), program.num_regs, program.code.size(),
              100.0 * program.debug_coverage());

  // With no view flag every view prints; flags restrict to the named ones.
  const bool all_views = !o.by_line && !o.by_opcode && !o.passes;
  if (all_views || o.passes) {
    print_pass_timings(stats);
  }

  // The --min-attribution gate is count-weighted over ALL inputs: a
  // degenerate run (empty input, a handful of prologue instructions) may
  // legitimately sit below the threshold without indicating any
  // attribution loss in the compiler.
  std::uint64_t gate_total = 0, gate_attributed = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    bvram::RunResult raw;
    const RunOutcome mc =
        compiled_outcome(program, entry, inputs[i], profile_config(), &raw);
    std::printf("\ninput %zu: %s\n", i, inputs[i]->show().c_str());
    if (mc.trapped) {
      std::printf("  trap (%s)\n", mc.error.c_str());
      continue;
    }
    const obs::Profile prof = obs::Profile::build(program, raw);
    std::printf("  T=%llu W=%llu; %.1f%% of executed instructions "
                "attributed\n  engine: %s\n",
                static_cast<unsigned long long>(mc.cost.time),
                static_cast<unsigned long long>(mc.cost.work),
                100.0 * prof.attributed_frac, prof.render_engine().c_str());
    if (all_views || o.by_line) {
      std::printf("\n%s", prof.render_by_line().c_str());
    }
    if (all_views || o.by_opcode) {
      std::printf("\n%s", prof.render_by_opcode().c_str());
    }
    if ((all_views || o.by_line) && !prof.by_loop.empty()) {
      std::printf("\n%s", prof.render_loops().c_str());
    }
    if (i == 0 && !o.chrome_path.empty()) {
      std::ofstream f(o.chrome_path, std::ios::binary);
      if (!f) fail("cannot write " + o.chrome_path);
      obs::write_chrome_trace(f, program, raw, &stats);
      std::printf("\nwrote %s\n", o.chrome_path.c_str());
    }
    gate_total += prof.total_count;
    gate_attributed += static_cast<std::uint64_t>(
        prof.attributed_frac * static_cast<double>(prof.total_count) + 0.5);
  }
  if (o.min_attribution >= 0.0 && gate_total > 0) {
    const double pct =
        100.0 * static_cast<double>(gate_attributed) /
        static_cast<double>(gate_total);
    if (pct < o.min_attribution) {
      std::fprintf(stderr,
                   "nscc profile: attribution %.1f%% across %llu executed "
                   "instructions is below the --min-attribution gate of "
                   "%.1f%%\n",
                   pct, static_cast<unsigned long long>(gate_total),
                   o.min_attribution);
      return 1;
    }
  }
  return 0;
}

/// Parse one serve request expression and typecheck it against the
/// entry's domain.
ValueRef parse_request(const std::string& label, const std::string& text,
                       const F::ResolvedFn& entry) {
  const F::SourceFile src(label, text);
  const F::ExprPtr e = F::parse_expression(src);
  const F::ResolvedInput in = F::resolve_expression(e, src);
  if (!Type::equal(in.type, entry.dom)) {
    fail(label + " has type " + in.type->show() + " but " + entry.name +
         " expects " + entry.dom->show());
  }
  return L::eval(in.term).value;
}

int cmd_serve(const F::SourceFile& src, const Options& o) {
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& entry = entry_of(mod, o);

  // Requests: the module's `input` lines and --input values, plus one
  // expression per non-blank, non-# line of --requests.
  std::vector<ValueRef> requests = gather_inputs(mod, entry, o);
  if (!o.requests_path.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (o.requests_path != "-") {
      file.open(o.requests_path, std::ios::binary);
      if (!file) fail("cannot read " + o.requests_path);
      in = &file;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(*in, line)) {
      ++lineno;
      const std::size_t pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      requests.push_back(parse_request(
          o.requests_path + ":" + std::to_string(lineno), line, entry));
    }
  }
  if (requests.empty()) {
    fail("no requests: add `input ...` lines, --input, or --requests");
  }

  serve::ServeConfig cfg;
  cfg.workers = o.workers;
  cfg.max_queue = o.max_queue;
  cfg.max_batch = o.max_batch;
  cfg.fuel = o.fuel;
  cfg.batching = !o.no_batch;
  cfg.parallel_backend = o.parallel;
  cfg.fuse = !o.no_fuse;

  // Telemetry sinks (pure observers; declared before the Service so they
  // outlive the worker threads that write into them).
  std::optional<obs::EventLog> events;
  std::optional<obs::SpanLog> spans;
  if (!o.events_path.empty()) {
    events.emplace();
    cfg.events = &*events;
  }
  if (!o.trace_path.empty()) {
    spans.emplace();
    cfg.spans = &*spans;
  }
  cfg.slow_ms = o.slow_ms;
  cfg.profile_runs = o.profile;
  serve::Service svc(cfg);
  const obs::Provenance prov = obs::Provenance::collect();
  const auto write_snapshots = [&] {
    if (!o.metrics_path.empty()) {
      std::ofstream f(o.metrics_path, std::ios::binary);
      if (!f) fail("cannot write " + o.metrics_path);
      svc.metrics().write_prometheus(f, &prov);
    }
    if (!o.stats_json_path.empty()) {
      std::ofstream f(o.stats_json_path, std::ios::binary);
      if (!f) fail("cannot write " + o.stats_json_path);
      f << svc.stats_json() << "\n";
    }
  };

  const auto prog = svc.load(src.name(), src.text(),
                             o.entry == "main" ? "" : o.entry, o.opt, o.sched);
  std::printf("%s : %s -> %s  [%s, %s; %zu workers, batching %s, "
              "max batch %zu]\n",
              entry.name.c_str(), entry.dom->show().c_str(),
              entry.cod->show().c_str(), opt_name(o.opt), sched_name(o.sched),
              svc.config().workers, cfg.batching ? "on" : "off",
              cfg.max_batch);

  // Pause the workers while the queue fills so the batcher sees the whole
  // request list at once (the steady-state shape of a loaded service).
  const std::size_t total = requests.size() * o.repeat;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(total);
  svc.pause();
  for (std::size_t rep = 0; rep < o.repeat; ++rep) {
    for (const ValueRef& r : requests) futures.push_back(svc.submit(prog, r));
  }
  svc.resume();

  constexpr std::size_t kPrint = 10;
  bool internal_error = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::Response r = futures[i].get();
    if (r.outcome == serve::Outcome::Error) internal_error = true;
    if (o.snapshot_every > 0 && (i + 1) % o.snapshot_every == 0) {
      write_snapshots();
    }
    if (i == kPrint && futures.size() > kPrint) {
      std::printf("  ... (%zu more requests)\n", futures.size() - kPrint);
    }
    if (i >= kPrint) continue;
    if (r.ok()) {
      std::printf("request %zu: %s  (T=%llu W=%llu, %s)\n", i,
                  r.value->show().c_str(),
                  static_cast<unsigned long long>(r.cost.time),
                  static_cast<unsigned long long>(r.cost.work),
                  r.batched
                      ? ("batch of " + std::to_string(r.batch_size)).c_str()
                      : "solo");
    } else {
      std::printf("request %zu: %s (%s)\n", i, serve::outcome_name(r.outcome),
                  r.error.c_str());
    }
  }
  svc.drain();

  const serve::ServeStats st = svc.stats();
  std::printf(
      "\nserved %llu requests: %llu ok, %llu trapped, %llu fuel-exhausted, "
      "%llu rejected, %llu errors\n",
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.ok),
      static_cast<unsigned long long>(st.trapped),
      static_cast<unsigned long long>(st.fuel_exhausted),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.errors));
  std::printf(
      "runs %llu (%llu batched runs, occupancy %.1f, %llu replays); "
      "cache %llu hit / %llu miss (compile %.2f ms)\n",
      static_cast<unsigned long long>(st.runs),
      static_cast<unsigned long long>(st.batch_runs), st.batch_occupancy,
      static_cast<unsigned long long>(st.replays),
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      static_cast<double>(st.cache.compile_wall_ns) / 1e6);
  std::printf("latency us: p50 %.1f  p95 %.1f  p99 %.1f  mean %.1f\n",
              static_cast<double>(st.latency_p50_ns) / 1e3,
              static_cast<double>(st.latency_p95_ns) / 1e3,
              static_cast<double>(st.latency_p99_ns) / 1e3,
              static_cast<double>(st.latency_mean_ns) / 1e3);

  write_snapshots();
  if (!o.metrics_path.empty()) {
    std::printf("wrote %s\n", o.metrics_path.c_str());
  }
  if (!o.stats_json_path.empty()) {
    std::printf("wrote %s\n", o.stats_json_path.c_str());
  }
  if (events.has_value()) {
    const obs::EventLogStats es = events->stats();
    std::ofstream f(o.events_path, std::ios::binary);
    if (!f) fail("cannot write " + o.events_path);
    events->write_header(f);
    for (const obs::Event& e : events->drain()) {
      obs::EventLog::write_event(f, e);
    }
    std::printf("wrote %s (%llu events, %llu dropped)\n",
                o.events_path.c_str(),
                static_cast<unsigned long long>(es.emitted),
                static_cast<unsigned long long>(es.dropped));
  }
  if (spans.has_value()) {
    const obs::SpanLogStats ss = spans->stats();
    std::ofstream f(o.trace_path, std::ios::binary);
    if (!f) fail("cannot write " + o.trace_path);
    obs::write_serve_trace(f, spans->drain(), svc.config().workers, &prov);
    std::printf("wrote %s (%llu spans, %llu dropped)\n", o.trace_path.c_str(),
                static_cast<unsigned long long>(ss.recorded),
                static_cast<unsigned long long>(ss.dropped));
  }
  return internal_error ? 1 : 0;
}

int cmd_fmt(const F::SourceFile& src, const Options&) {
  std::fputs(F::print_module(F::parse_module(src)).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    if (o.command == "doc") {
      std::fputs(F::language_reference().c_str(), stdout);
      return 0;
    }
    const F::SourceFile src = F::load_file(o.file);
    if (o.command == "check") return cmd_check(src, o);
    if (o.command == "eval") return cmd_eval(src, o);
    if (o.command == "run") return cmd_run(src, o);
    if (o.command == "dump") return cmd_dump(src, o);
    if (o.command == "bench") return cmd_bench(src, o);
    if (o.command == "profile") return cmd_profile(src, o);
    if (o.command == "serve") return cmd_serve(src, o);
    if (o.command == "fmt") return cmd_fmt(src, o);
    usage(argv[0]);
  } catch (const front::FrontError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const nsc::Error& e) {
    std::fprintf(stderr, "nscc: %s\n", e.what());
    return 1;
  }
}
