// The lifted-while schedule knob (Lemma 7.2): compile one mapped while
// loop under the naive, eager, and staged schedules and watch the work
// diverge on a straggler workload while the results stay identical.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/schedules
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/typecheck.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "support/checked.hpp"

int main() {
  using namespace nsc;
  namespace L = nsc::lang;
  const TypeRef N = Type::nat();

  // map (while v > 0 do v - 1): element i runs for t_i iterations.
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef xs) {
    return L::apply(L::map_f(L::lam(N,
                                    [&](L::TermRef v) {
                                      return L::apply(L::while_f(pred, step),
                                                      v);
                                    })),
                    xs);
  });
  auto [dom, cod] = L::check_func(f);

  // A straggler workload: almost everything finishes in round one, but a
  // handful of elements keep the loop alive for ~sqrt(n) more rounds.  The
  // naive schedule re-touches all n slots every round.
  const std::uint64_t n = 1024;
  const std::uint64_t m = isqrt(n);
  std::vector<std::uint64_t> counts(n, 1);
  std::uint64_t ideal = 0;
  for (std::uint64_t j = 0; j < m; ++j) counts[n - m + j] = j + 2;
  for (auto c : counts) ideal += c;
  auto input = Value::nat_seq(counts);
  std::printf("n=%llu elements, W_ideal = sum t_i = %llu\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(ideal));

  ValueRef reference;
  struct Knob {
    const char* name;
    opt::WhileSchedule sched;
  } knobs[] = {
      {"naive        ", opt::WhileSchedule::naive()},
      {"eager        ", opt::WhileSchedule::eager()},
      {"staged eps1/2", opt::WhileSchedule::staged({1, 2})},
      {"staged eps1/4", opt::WhileSchedule::staged({1, 4})},
  };
  for (const auto& k : knobs) {
    auto program = sa::compile_nsc(f, opt::OptLevel::O2, k.sched);
    auto r = sa::run_compiled(program, dom, cod, input);
    const bool same = !reference || Value::equal(reference, r.value);
    if (!reference) reference = r.value;
    std::printf("%s  %3zu regs  W=%9llu  W/W_ideal=%7.1f  result %s\n",
                k.name, program.num_regs,
                static_cast<unsigned long long>(r.cost.work),
                static_cast<double>(r.cost.work) / ideal,
                same ? "identical" : "DIFFERS!");
  }
  std::printf(
      "\nThe staged schedule buffers finished elements through V1/V2 at the\n"
      "ceil(n^(k*eps)) thresholds and restores the original order with one\n"
      "backwards replay of the logged packs at exit -- Lemma 7.2, surfaced\n"
      "through the compiler (see opt::WhileSchedule in src/opt/opt.hpp).\n");
  return 0;
}
