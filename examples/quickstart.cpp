// Quickstart: build an NSC program, typecheck it, evaluate it with the
// paper's cost semantics, then compile it through NSA to a BVRAM program
// and run that -- the whole pipeline in ~40 lines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "sa/compile.hpp"

int main() {
  using namespace nsc;
  namespace L = nsc::lang;
  namespace P = nsc::lang::prelude;
  const TypeRef N = Type::nat();

  // A data-parallel NSC function: keep values below 10, square them, and
  // pair each with its position.
  auto small = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(10)); });
  auto square = L::lam(N, [](L::TermRef v) { return L::mul(v, v); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef xs) {
    L::TermRef kept = L::apply(P::filter(small, N), xs);
    return L::let_in(Type::seq(N), kept, [&](L::TermRef k) {
      return L::zip(L::enumerate(k), L::apply(L::map_f(square), k));
    });
  });

  // 1. static types
  auto [dom, cod] = L::check_func(f);
  std::printf("type: %s -> %s\n", dom->show().c_str(), cod->show().c_str());

  // 2. evaluate with Definition 3.1 costs
  auto input = Value::nat_seq({4, 25, 7, 1, 13, 9});
  auto r = L::apply_fn(f, input);
  std::printf("input:  %s\n", input->show().c_str());
  std::printf("result: %s\n", r.value->show().c_str());
  std::printf("NSC cost: parallel time T=%llu, work W=%llu\n",
              static_cast<unsigned long long>(r.cost.time),
              static_cast<unsigned long long>(r.cost.work));

  // 3. compile: NSC -> NSA (variable elimination) -> BVRAM (flattening)
  auto program = sa::compile_nsc(f);
  std::printf("\ncompiled BVRAM program: %zu registers, %zu instructions\n",
              program.num_regs, program.code.size());

  // 4. run the machine and decode
  auto mr = sa::run_compiled(program, dom, cod, input);
  std::printf("BVRAM result: %s\n", mr.value->show().c_str());
  std::printf("BVRAM cost: T=%llu instructions, W=%llu register-lengths\n",
              static_cast<unsigned long long>(mr.cost.time),
              static_cast<unsigned long long>(mr.cost.work));
  std::printf("values agree: %s\n",
              Value::equal(r.value, mr.value) ? "yes" : "NO");
  return 0;
}
