// Sorting with section 5's algorithms: Valiant's O(log n log log n)
// mergesort (Figures 1-3, evaluated by the map-recursion reference
// semantics) and the quicksort schema-g example run through the Theorem
// 4.2 translation.
#include <algorithm>
#include <cstdio>

#include "algorithms/valiant.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "support/prng.hpp"

int main() {
  using namespace nsc;

  SplitMix64 rng(42);
  auto data = rng.vec(512, 100000);
  auto input = Value::nat_seq(data);

  // Valiant mergesort: the sqrt-sampling merge gives O(log n log log n)
  // parallel time.
  auto sorted = alg::eval_valiant_mergesort(input);
  auto check = data;
  std::sort(check.begin(), check.end());
  std::printf("valiant mergesort of 512 random keys: %s (T=%llu, W=%llu)\n",
              sorted.value->as_nat_vector() == check ? "sorted" : "WRONG",
              static_cast<unsigned long long>(sorted.cost.time),
              static_cast<unsigned long long>(sorted.cost.work));

  // The time column is the point: compare a 4x larger input.
  auto data4 = rng.vec(2048, 100000);
  auto sorted4 = alg::eval_valiant_mergesort(Value::nat_seq(data4));
  std::printf(
      "4x the input: T %llu -> %llu (polylog growth), W %llu -> %llu\n",
      static_cast<unsigned long long>(sorted.cost.time),
      static_cast<unsigned long long>(sorted4.cost.time),
      static_cast<unsigned long long>(sorted.cost.work),
      static_cast<unsigned long long>(sorted4.cost.work));

  // Quicksort (the paper's schema-g example) via the Theorem 4.2
  // translation: a pure while-based NSC program, no recursion left.
  auto q = lang::translate_maprec(alg::quicksort());
  auto small = rng.vec(64, 500);
  auto qs = lang::apply_fn(q, Value::nat_seq(small));
  auto qcheck = small;
  std::sort(qcheck.begin(), qcheck.end());
  std::printf(
      "quicksort via Thm 4.2 translation (64 keys): %s (T=%llu, W=%llu)\n",
      qs.value->as_nat_vector() == qcheck ? "sorted" : "WRONG",
      static_cast<unsigned long long>(qs.cost.time),
      static_cast<unsigned long long>(qs.cost.work));
  return 0;
}
