// Nested-collection query, the paper's motivating database application
// ("We have in mind applications to databases", section 1; NSC descends
// from the authors' query-language work [BTS91, BBW92]).
//
// Schema: departments : [[N]] -- each department is a sequence of
// salaries.  Query: for each department, the number of employees earning
// at least 50, and the total of those salaries -- a nested map over a
// filtered nested sequence, i.e. genuine nested data parallelism, then
// compiled to the flat BVRAM.
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "sa/compile.hpp"

int main() {
  using namespace nsc;
  namespace L = nsc::lang;
  namespace P = nsc::lang::prelude;
  const TypeRef N = Type::nat();
  const TypeRef Dept = Type::seq(N);      // one department's salaries
  const TypeRef Db = Type::seq(Dept);     // all departments

  auto well_paid =
      L::lam(N, [](L::TermRef s) { return L::leq(L::nat(50), s); });

  // per-department: (count of well-paid, their total)
  auto per_dept = L::lam(Dept, [&](L::TermRef d) {
    L::TermRef kept = L::apply(P::filter(well_paid, N), d);
    return L::let_in(Dept, kept, [&](L::TermRef k) {
      return L::pair(L::length(k), L::apply(P::sum_nats(), k));
    });
  });
  auto query = L::lam(Db, [&](L::TermRef db) {
    return L::apply(L::map_f(per_dept), db);
  });

  auto db = Value::seq({
      Value::nat_seq({30, 55, 70}),        // dept 0
      Value::nat_seq({}),                  // dept 1 (empty)
      Value::nat_seq({49, 50, 51, 120}),   // dept 2
      Value::nat_seq({10, 20}),            // dept 3
  });

  auto [dom, cod] = L::check_func(query);
  auto r = L::apply_fn(query, db);
  std::printf("departments: %s\n", db->show().c_str());
  std::printf("query type:  %s -> %s\n", dom->show().c_str(),
              cod->show().c_str());
  std::printf("result:      %s\n", r.value->show().c_str());
  std::printf("NSC cost:    T=%llu W=%llu\n",
              static_cast<unsigned long long>(r.cost.time),
              static_cast<unsigned long long>(r.cost.work));

  // The same query, flattened: per-department loops become segmented
  // vector operations over the whole database at once.
  auto program = sa::compile_nsc(query);
  auto mr = sa::run_compiled(program, dom, cod, db);
  std::printf("\nflattened to BVRAM: %zu registers, %zu instructions\n",
              program.num_regs, program.code.size());
  std::printf("BVRAM result: %s (agree: %s)\n", mr.value->show().c_str(),
              Value::equal(r.value, mr.value) ? "yes" : "NO");
  std::printf("BVRAM cost:   T=%llu W=%llu\n",
              static_cast<unsigned long long>(mr.cost.time),
              static_cast<unsigned long long>(mr.cost.work));
  return 0;
}
