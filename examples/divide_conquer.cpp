// Map-recursion end to end: define a divide-and-conquer function
// (polynomial evaluation by range splitting), run it recursively, translate
// it to while-based NSC with Theorem 4.2 (both schedules), and compile the
// translation to the BVRAM with Theorem 7.1.
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "sa/compile.hpp"

int main() {
  using namespace nsc;
  namespace L = nsc::lang;
  const TypeRef N = Type::nat();
  const TypeRef NSeq = Type::seq(N);

  // f(coeffs) = sum of coefficients by divide and conquer (schema g):
  // if |c| <= 1 then head-or-0 else f(left half) + f(right half).
  auto p = L::lam(NSeq, [](L::TermRef c) {
    return L::leq(L::length(c), L::nat(1));
  });
  auto s = L::lam(NSeq, [](L::TermRef c) {
    return L::ite(L::eq(L::length(c), L::nat(0)), L::nat(0),
                  L::get(c));
  });
  auto halve = [&](bool second) {
    return L::lam(NSeq, [&, second](L::TermRef c) {
      return L::let_in(N, L::length(c), [&](L::TermRef n) {
        L::TermRef half = L::div_t(n, L::nat(2));
        L::TermRef sizes = L::append(L::singleton(L::monus_t(n, half)),
                                     L::singleton(half));
        auto blocks = L::split(c, sizes);
        return second ? L::apply(L::prelude::last(NSeq), blocks)
                      : L::apply(L::prelude::first(NSeq), blocks);
      });
    });
  };
  auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  auto f = L::schema_g(NSeq, N, p, s, halve(false), halve(true), c2);

  auto input = Value::nat_seq({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});

  // 1. reference recursive evaluation (Definition 4.1 semantics).
  auto direct = L::eval_maprec(f, input);
  std::printf("recursive:        result=%llu  T=%llu W=%llu\n",
              static_cast<unsigned long long>(direct.value->as_nat()),
              static_cast<unsigned long long>(direct.cost.time),
              static_cast<unsigned long long>(direct.cost.work));

  // 2. Theorem 4.2, plain and staged translations.
  auto plain = L::translate_maprec(f);
  auto rp = L::apply_fn(plain, input);
  std::printf("thm 4.2 plain:    result=%llu  T=%llu W=%llu\n",
              static_cast<unsigned long long>(rp.value->as_nat()),
              static_cast<unsigned long long>(rp.cost.time),
              static_cast<unsigned long long>(rp.cost.work));
  L::MapRecTranslateOptions so;
  so.staged = true;
  auto staged = L::translate_maprec(f, so);
  auto rs = L::apply_fn(staged, input);
  std::printf("thm 4.2 staged:   result=%llu  T=%llu W=%llu\n",
              static_cast<unsigned long long>(rs.value->as_nat()),
              static_cast<unsigned long long>(rs.cost.time),
              static_cast<unsigned long long>(rs.cost.work));

  // 3. Theorem 7.1: compile the plain translation to the BVRAM.
  auto [dom, cod] = L::check_func(plain);
  auto program = sa::compile_nsc(plain);
  auto mr = sa::run_compiled(program, dom, cod, input);
  std::printf("compiled (BVRAM): result=%llu  T=%llu W=%llu  (%zu regs)\n",
              static_cast<unsigned long long>(mr.value->as_nat()),
              static_cast<unsigned long long>(mr.cost.time),
              static_cast<unsigned long long>(mr.cost.work),
              program.num_regs);
  return 0;
}
