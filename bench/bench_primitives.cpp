// E8 (section 3 derived operations): the claimed costs of the prelude and
// the "cost of an arbitrary permutation is visible" discussion.
//   index:        T = O(1), W = O(n + k)            [Figure 3]
//   bm_route:     T = O(1), W = O(in + out)
//   permutation via map of index-lookups: T = O(1), W = O(n^2)
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using namespace nsc;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

/// The section 3 "arbitrary permutation with map" program:
/// permute(x, pi) = map(\i. x_i via rank filter)(pi) -- O(1) time, O(n^2)
/// work, the work blowup the paper uses to motivate visible permutation
/// costs.
L::FuncRef permute_by_map() {
  return L::lam(Type::prod(NSeq, NSeq), [](L::TermRef z) {
    return L::let_in(NSeq, L::proj1(z), [&](L::TermRef x) {
      auto pick = L::lam(N, [&](L::TermRef i) {
        // x_i = get(filter(position == i)(zip(enumerate x, x)))
        auto at_i = L::lam(Type::prod(N, N), [&](L::TermRef q) {
          return L::eq(L::proj1(q), i);
        });
        return L::proj2(L::get(L::apply(
            P::filter(at_i, Type::prod(N, N)), L::zip(L::enumerate(x), x))));
      });
      return L::apply(L::map_f(pick), L::proj2(z));
    });
  });
}

}  // namespace

int main() {
  std::printf("E8: section 3 derived-operation costs\n\n");
  {
    Table t({"n", "T_index", "W_index", "W/(n+k)"});
    auto f = P::index(N);
    for (std::size_t n : {128u, 512u, 2048u, 8192u}) {
      std::vector<std::uint64_t> c(n);
      for (std::size_t i = 0; i < n; ++i) c[i] = i;
      auto arg = Value::pair(Value::nat_seq(c),
                             Value::nat_seq({0, n / 2, n - 1}));
      auto r = L::apply_fn(f, arg);
      t.row({Table::num(n), Table::num(r.cost.time), Table::num(r.cost.work),
             Table::fixed(static_cast<double>(r.cost.work) / (n + 3), 1)});
    }
    std::printf("-- index(C, I): claimed T = O(1), W = O(n + k) --\n");
    t.print();
  }
  {
    Table t({"n", "T_route", "W_route", "W/n"});
    auto f = P::bm_route(N, N);
    for (std::size_t n : {128u, 512u, 2048u, 8192u}) {
      std::vector<std::uint64_t> u(n, 0), d(n, 1), x(n, 7);
      auto arg = Value::pair(
          Value::pair(Value::nat_seq(u), Value::nat_seq(d)),
          Value::nat_seq(x));
      auto r = L::apply_fn(f, arg);
      t.row({Table::num(n), Table::num(r.cost.time), Table::num(r.cost.work),
             Table::fixed(static_cast<double>(r.cost.work) / n, 1)});
    }
    std::printf("\n-- bm_route: claimed T = O(1), W = O(n) --\n");
    t.print();
  }
  {
    Table t({"n", "T_perm", "W_perm", "W/n^2"});
    auto f = permute_by_map();
    SplitMix64 rng(8);
    for (std::size_t n : {16u, 32u, 64u, 128u}) {
      std::vector<std::uint64_t> x(n), pi(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = rng.below(100);
        pi[i] = i;
      }
      for (std::size_t i = n; i > 1; --i) {
        std::swap(pi[i - 1], pi[rng.below(i)]);
      }
      auto arg = Value::pair(Value::nat_seq(x), Value::nat_seq(pi));
      auto r = L::apply_fn(f, arg);
      t.row({Table::num(n), Table::num(r.cost.time), Table::num(r.cost.work),
             Table::fixed(static_cast<double>(r.cost.work) / (double(n) * n),
                          2)});
    }
    std::printf(
        "\n-- arbitrary permutation via map: T = O(1), W = O(n^2)\n"
        "   (\"the cost of performing an arbitrary permutation is visible\n"
        "   in the higher level language\", section 3) --\n");
    t.print();
  }
  return 0;
}
