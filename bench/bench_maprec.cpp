// E2 (Theorem 4.2): map-recursion -> NSC translation.
// Paper claim: T' = O(T) always; W' = O(W) for balanced divide-and-conquer
// trees; W' = O(v^eps W) for unbalanced trees with the staged z_i buffers.
// We compare the direct recursive evaluation (T, W) against the translated
// while-programs, plain and staged, on a balanced reduction and a skewed
// (caterpillar) recursion.
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "support/table.hpp"

namespace {

namespace L = nsc::lang;
using nsc::Table;
using nsc::Type;
using nsc::TypeRef;
using nsc::Value;

const TypeRef N = Type::nat();

L::MapRec range_sum() {
  const TypeRef range = Type::prod(N, N);
  auto p = L::lam(range, [](L::TermRef x) {
    return L::leq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(1));
  });
  auto s = L::lam(range, [](L::TermRef x) {
    return L::ite(L::eq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(0)),
                  L::nat(0), L::proj1(x));
  });
  auto d1 = L::lam(range, [](L::TermRef x) {
    return L::pair(L::proj1(x),
                   L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)));
  });
  auto d2 = L::lam(range, [](L::TermRef x) {
    return L::pair(L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)),
                   L::proj2(x));
  });
  auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  return L::schema_g(range, N, p, s, d1, d2, c2);
}

L::MapRec skewed_sum() {
  auto p = L::lam(N, [](L::TermRef x) { return L::leq(x, L::nat(1)); });
  auto s = L::prelude::identity(N);
  auto d1 = L::lam(N, [](L::TermRef) { return L::nat(1); });
  auto d2 = L::lam(N, [](L::TermRef x) { return L::monus_t(x, L::nat(1)); });
  auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  return L::schema_g(N, N, p, s, d1, d2, c2);
}

void report(const char* name, const L::MapRec& f,
            const std::vector<nsc::ValueRef>& args,
            const std::vector<std::string>& labels) {
  std::printf("\n-- %s --\n", name);
  auto plain = L::translate_maprec(f);
  L::MapRecTranslateOptions s2;
  s2.staged = true;
  s2.eps = {1, 2};
  auto staged_half = L::translate_maprec(f, s2);
  L::MapRecTranslateOptions s3;
  s3.staged = true;
  s3.eps = {1, 3};
  auto staged_third = L::translate_maprec(f, s3);

  Table t({"input", "T", "W", "T'pln/T", "W'pln/W", "W'e=1/2/W",
           "W'e=1/3/W"});
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto direct = L::eval_maprec(f, args[i]);
    auto rp = L::apply_fn(plain, args[i]);
    auto rh = L::apply_fn(staged_half, args[i]);
    auto rt = L::apply_fn(staged_third, args[i]);
    const double T = direct.cost.time, W = direct.cost.work;
    t.row({labels[i], Table::num(direct.cost.time),
           Table::num(direct.cost.work), Table::fixed(rp.cost.time / T, 2),
           Table::fixed(rp.cost.work / W, 2), Table::fixed(rh.cost.work / W, 2),
           Table::fixed(rt.cost.work / W, 2)});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf(
      "E2: Theorem 4.2 -- map-recursion translated to while-based NSC\n"
      "paper: T' = O(T); W' = O(W) balanced; staged buffers bound the\n"
      "re-touch overhead on unbalanced trees\n");

  {
    std::vector<nsc::ValueRef> args;
    std::vector<std::string> labels;
    for (std::uint64_t n : {64ull, 256ull, 1024ull, 4096ull}) {
      args.push_back(Value::pair(Value::nat(0), Value::nat(n)));
      labels.push_back("n=" + std::to_string(n) + " (balanced)");
    }
    report("balanced range-sum (schema g)", range_sum(), args, labels);
  }
  {
    std::vector<nsc::ValueRef> args;
    std::vector<std::string> labels;
    // depths capped below 62: the plain translation's path keys live in
    // one natural (key < 2^62); the staged translation has no such limit.
    for (std::uint64_t n : {16ull, 28ull, 40ull, 56ull}) {
      args.push_back(Value::nat(n));
      labels.push_back("depth=" + std::to_string(n) + " (caterpillar)");
    }
    report("skewed caterpillar recursion", skewed_sum(), args, labels);
  }
  std::printf(
      "\nreading: plain ratios stay flat on balanced trees (W' = O(W));\n"
      "on the caterpillar the plain ratio grows with depth while the\n"
      "staged ratios grow strictly slower (the z_i-buffer effect).\n");
  return 0;
}
