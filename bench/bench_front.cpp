// Frontend throughput: how fast the textual pipeline (lex -> parse ->
// resolve -> compile) chews through the .nsc corpus.  Informational --
// no gating, wall-clock only -- but it keeps parser performance visible
// as the corpus grows and gives a one-command profile target.
//
//   ./build/bench/bench_front [corpus-dir]   (default: tests/corpus)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "front/front.hpp"
#include "sa/compile.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  namespace F = nsc::front;
  const std::string dir = argc > 1 ? argv[1] : "tests/corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".nsc") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "no .nsc files under %s\n", dir.c_str());
    return 2;
  }
  std::printf("%-28s %7s %7s %10s %10s %10s %8s\n", "program", "bytes",
              "tokens", "parse us", "resolve us", "compile us", "instrs");
  double total_parse = 0, total_resolve = 0, total_compile = 0;
  for (const auto& path : files) {
    const F::SourceFile src = F::load_file(path);
    const auto t0 = Clock::now();
    const auto tokens = F::lex(src);
    const F::Module mod = F::parse_module(src);
    const double parse_us = us_since(t0);
    const auto t1 = Clock::now();
    const F::ResolvedModule resolved = F::resolve(mod, src);
    const double resolve_us = us_since(t1);
    const auto t2 = Clock::now();
    const auto program = nsc::sa::compile_nsc(resolved.main().fn);
    const double compile_us = us_since(t2);
    total_parse += parse_us;
    total_resolve += resolve_us;
    total_compile += compile_us;
    std::printf("%-28s %7zu %7zu %10.1f %10.1f %10.1f %8zu\n",
                std::filesystem::path(path).filename().string().c_str(),
                src.text().size(), tokens.size(), parse_us, resolve_us,
                compile_us, program.code.size());
  }
  std::printf("%-28s %7s %7s %10.1f %10.1f %10.1f\n", "total", "", "",
              total_parse, total_resolve, total_compile);
  return 0;
}
