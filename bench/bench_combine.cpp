// E9 (Example D.1): `combine(f, x, y)` -- interleave two sequences by a
// flag vector -- in the flat algebra: O(1) parallel steps, linear work.
// We measure the compiled BVRAM combine (as emitted for lifted sum-case
// merges by the flattening compiler) via an NSC case-merge program, and
// the NSC-level costs of the same program.
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/typecheck.hpp"
#include "sa/compile.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace nsc;
  namespace L = nsc::lang;
  const TypeRef N = Type::nat();
  std::printf(
      "E9: Example D.1 -- combine by flags in the flat algebra\n"
      "program: map(case v of in1 a => a * 2 | in2 b => b + 1) over a\n"
      "mixed [N + N]: the compiled code packs both sides, applies each\n"
      "branch, and re-interleaves with the D.1 combine.\n\n");

  auto f = L::lam(Type::seq(Type::sum(N, N)), [&](L::TermRef x) {
    // \v. case v of in1 a => 2a | in2 b => b+1
    const std::string a = L::gensym("a");
    const std::string b = L::gensym("b");
    const std::string v = L::gensym("v");
    auto g = L::lambda(
        v, Type::sum(N, N),
        L::case_of(L::var(v), a, L::mul(L::var(a), L::nat(2)), b,
                   L::add(L::var(b), L::nat(1))));
    return L::apply(L::map_f(g), x);
  });
  auto [dom, cod] = L::check_func(f);
  auto program = sa::compile_nsc(f);

  Table t({"n", "T_nsc", "W_nsc", "T_bvram", "W_bvram", "W_bvram/n"});
  SplitMix64 rng(12);
  for (std::size_t n : {128u, 512u, 2048u, 8192u}) {
    std::vector<ValueRef> elems;
    elems.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto val = Value::nat(rng.below(1000));
      elems.push_back(rng.coin() ? Value::in1(val) : Value::in2(val));
    }
    auto arg = Value::seq(std::move(elems));
    auto nscr = L::apply_fn(f, arg);
    auto bv = sa::run_compiled(program, dom, cod, arg);
    if (!Value::equal(nscr.value, bv.value)) {
      std::printf("MISMATCH at n=%zu!\n", n);
      return 1;
    }
    t.row({Table::num(n), Table::num(nscr.cost.time),
           Table::num(nscr.cost.work), Table::num(bv.cost.time),
           Table::num(bv.cost.work),
           Table::fixed(static_cast<double>(bv.cost.work) / n, 1)});
  }
  t.print();
  std::printf(
      "\nreading: the BVRAM T column is constant (O(1) parallel steps for\n"
      "the whole map-case-combine) and W/n flat (linear work) -- Example\n"
      "D.1's cost.  Values verified equal to the NSC semantics.\n");
  return 0;
}
