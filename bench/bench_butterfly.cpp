// E5 (Proposition 2.1): BVRAM instructions on a butterfly with n log n
// nodes in O(log n) steps via oblivious routing, and O((W/p) log p) in the
// grouped (p < W) regime.  We run a real compiled program, collect its
// instruction trace, and map every instruction onto butterflies of varying
// width; we also validate greedy monotone routing congestion directly.
#include <cstdio>

#include "butterfly/butterfly.hpp"
#include "nsc/prelude.hpp"
#include "sa/compile.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace nsc;
  namespace P = nsc::lang::prelude;
  std::printf(
      "E5: Prop 2.1 -- BVRAM instructions on a butterfly network\n\n");

  // 1. Congestion of greedy monotone routes (the oblivious-routing claim).
  {
    SplitMix64 rng(3);
    net::Butterfly b(10);
    std::uint64_t worst = 0;
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint32_t> src, dst;
      std::uint32_t x = rng.below(3), y = rng.below(3);
      while (src.size() < 400 && x < b.rows() && y < b.rows()) {
        src.push_back(x);
        dst.push_back(y);
        x += 1 + rng.below(4);
        y += 1 + rng.below(4);
      }
      auto s = b.monotone_route(src, dst);
      if (s.max_edge_load > worst) worst = s.max_edge_load;
    }
    std::printf(
        "greedy monotone routing, 200 random routes on 2^10 rows:\n"
        "  worst edge congestion observed: %llu (constant; delivery in\n"
        "  q * load <= %u steps = O(log n))\n\n",
        static_cast<unsigned long long>(worst), 2 * b.q());
  }

  // 2. Per-instruction step counts for a real compiled program's trace.
  {
    auto program = sa::compile_nsc(P::index(Type::nat()));
    std::vector<std::uint64_t> c(1 << 12);
    for (std::size_t i = 0; i < c.size(); ++i) c[i] = i;
    auto arg = Value::pair(Value::nat_seq(c),
                           Value::nat_seq({0, c.size() / 2, c.size() - 1}));
    bvram::RunConfig cfg;
    cfg.record_trace = true;
    auto inputs = sa::encode_value(
        arg, Type::prod(Type::seq(Type::nat()), Type::seq(Type::nat())));
    auto result = bvram::run(program, inputs, cfg);

    Table t({"q (rows=2^q)", "network nodes", "total steps", "steps/instr",
             "W/2^q"});
    for (unsigned q : {8u, 10u, 12u, 14u}) {
      net::Butterfly b(q);
      const auto steps = net::butterfly_steps_for_trace(result.trace, q);
      t.row({Table::num(q), Table::num(b.nodes()), Table::num(steps),
             Table::fixed(static_cast<double>(steps) / result.trace.size(), 1),
             Table::num(result.cost.work >> q)});
    }
    std::printf("index(C, I) with |C| = 4096: T=%llu instructions, W=%llu\n",
                static_cast<unsigned long long>(result.cost.time),
                static_cast<unsigned long long>(result.cost.work));
    t.print();
    std::printf(
        "\nreading: once 2^q >= the vector lengths (q = 14), each\n"
        "instruction costs O(q) = O(log n) steps; for smaller machines the\n"
        "grouped mode scales as O((W / 2^q) log n) (Prop 2.1's extension).\n");
  }
  return 0;
}
