// E3 (Theorem 7.1): NSC -> NSA -> BVRAM compilation.
// Paper claim: T' = O(T), W' = O(W^(1+eps)), with a register count fixed by
// the source program.  For each corpus program we report NSC costs, BVRAM
// costs, the ratios across input sizes (flat ratios = preserved orders),
// and the static register count.
//
// Each program is compiled twice -- naive catalog emission (O0) and the
// src/opt/ pipeline (O2, the default) -- and the table reports both
// static shapes and both executed T/W, so the optimizer's constant-
// factor win is measured alongside the paper's asymptotic claims.
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using nsc::Table;
using nsc::Type;
using nsc::TypeRef;
using nsc::Value;
using nsc::ValueRef;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

void report(const char* name, const L::FuncRef& f,
            const std::vector<ValueRef>& args,
            const std::vector<std::string>& labels) {
  auto [dom, cod] = L::check_func(f);
  auto naive = nsc::sa::compile_nsc(f, nsc::opt::OptLevel::O0);
  auto program = nsc::sa::compile_nsc(f);  // default: O2
  std::printf(
      "\n-- %s --\n"
      "   naive:     %6zu instructions, %6zu registers\n"
      "   optimized: %6zu instructions, %6zu registers  (-%.1f%% static)\n",
      name, naive.code.size(), naive.num_regs, program.code.size(),
      program.num_regs,
      100.0 * (1.0 - static_cast<double>(program.code.size()) /
                         static_cast<double>(naive.code.size())));
  Table t({"input", "T_nsc", "W_nsc", "T_O0", "W_O0", "T_opt", "W_opt",
           "T'/T", "W'/W"});
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto nscr = L::apply_fn(f, args[i]);
    auto bv0 = nsc::sa::run_compiled(naive, dom, cod, args[i]);
    auto bv = nsc::sa::run_compiled(program, dom, cod, args[i]);
    t.row({labels[i], Table::num(nscr.cost.time), Table::num(nscr.cost.work),
           Table::num(bv0.cost.time), Table::num(bv0.cost.work),
           Table::num(bv.cost.time), Table::num(bv.cost.work),
           Table::fixed(static_cast<double>(bv.cost.time) / nscr.cost.time, 2),
           Table::fixed(static_cast<double>(bv.cost.work) / nscr.cost.work,
                        2)});
  }
  t.print();
}

ValueRef index_arg(std::size_t n) {
  std::vector<std::uint64_t> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = i * 2;
  return Value::pair(Value::nat_seq(c),
                     Value::nat_seq({0, n / 3, n / 2, n - 1}));
}

}  // namespace

int main() {
  std::printf(
      "E3: Theorem 7.1 -- compiling NSC to the BVRAM\n"
      "paper: T' = O(T), W' = O(W^(1+eps)); the register counts printed\n"
      "per program depend only on the source, never on the input.\n"
      "T_O0/W_O0: naive catalog emission; T_opt/W_opt: the src/opt/\n"
      "pipeline (verify, copy-prop, peephole/CSE, DCE, reg-compact).\n");

  {
    std::vector<ValueRef> args;
    std::vector<std::string> labels;
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      args.push_back(index_arg(n));
      labels.push_back("n=" + std::to_string(n));
    }
    report("index(C, I)  [Figure 3]", P::index(N), args, labels);
  }
  {
    auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(512)); });
    auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
    auto f = L::lam(NSeq, [&](L::TermRef x) {
      return L::apply(L::map_f(dbl), L::apply(P::filter(keep, N), x));
    });
    std::vector<ValueRef> args;
    std::vector<std::string> labels;
    nsc::SplitMix64 rng(5);
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      args.push_back(Value::nat_seq(rng.vec(n, 1024)));
      labels.push_back("n=" + std::to_string(n));
    }
    report("filter-then-map pipeline", f, args, labels);
  }
  {
    std::vector<ValueRef> args;
    std::vector<std::string> labels;
    for (std::size_t n : {64u, 256u, 1024u}) {
      std::vector<std::uint64_t> v(n, 3);
      args.push_back(Value::nat_seq(v));
      labels.push_back("n=" + std::to_string(n));
    }
    report("sum via log-depth while (prelude)", P::sum_nats(), args, labels);
  }
  {
    // Full stack: Theorem 4.2 translation of a divide-and-conquer
    // reduction, then Theorem 7.1 compilation of the result.
    const TypeRef range = Type::prod(N, N);
    auto p = L::lam(range, [](L::TermRef x) {
      return L::leq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(1));
    });
    auto s = L::lam(range, [](L::TermRef x) {
      return L::ite(L::eq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(0)),
                    L::nat(0), L::proj1(x));
    });
    auto d1 = L::lam(range, [](L::TermRef x) {
      return L::pair(L::proj1(x),
                     L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)));
    });
    auto d2 = L::lam(range, [](L::TermRef x) {
      return L::pair(L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)),
                     L::proj2(x));
    });
    auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
      return L::add(L::proj1(q), L::proj2(q));
    });
    auto g = L::translate_maprec(L::schema_g(range, N, p, s, d1, d2, c2));
    std::vector<ValueRef> args;
    std::vector<std::string> labels;
    for (std::uint64_t n : {32ull, 128ull, 512ull}) {
      args.push_back(Value::pair(Value::nat(0), Value::nat(n)));
      labels.push_back("n=" + std::to_string(n));
    }
    report("Thm 4.2-translated range-sum (full stack)", g, args, labels);
  }
  {
    // The Lemma 7.2 while schedule knob (opt::WhileSchedule): the same
    // mapped-while source compiled under naive vs staged(1/2), on the
    // bench_seqwhile straggler adversary.
    auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
    auto step =
        L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
    auto f = L::lam(NSeq, [&](L::TermRef x) {
      return L::apply(L::map_f(L::lam(N,
                                      [&](L::TermRef v) {
                                        return L::apply(
                                            L::while_f(pred, step), v);
                                      })),
                      x);
    });
    auto [dom, cod] = L::check_func(f);
    auto naive = nsc::sa::compile_nsc(f);  // default: naive schedule
    auto staged = nsc::sa::compile_nsc(f, nsc::opt::OptLevel::O2,
                                       nsc::opt::WhileSchedule::staged({1, 2}));
    std::printf(
        "\n-- while-schedule knob (Lemma 7.2) on map(while v>0: v-1) --\n"
        "   naive:  %4zu instructions, %3zu registers\n"
        "   staged: %4zu instructions, %3zu registers (eps = 1/2)\n",
        naive.code.size(), naive.num_regs, staged.code.size(),
        staged.num_regs);
    Table t({"input", "T_naive", "W_naive", "T_staged", "W_staged",
             "W_naive/W_staged"});
    for (std::uint64_t n : {256ull, 1024ull, 4096ull}) {
      const std::uint64_t m = nsc::isqrt(n);
      std::vector<std::uint64_t> counts(n, 1);
      for (std::uint64_t j = 0; j < m; ++j) counts[n - m + j] = j + 2;
      auto arg = Value::nat_seq(counts);
      auto rn = nsc::sa::run_compiled(naive, dom, cod, arg);
      auto rs = nsc::sa::run_compiled(staged, dom, cod, arg);
      t.row({"n=" + std::to_string(n), Table::num(rn.cost.time),
             Table::num(rn.cost.work), Table::num(rs.cost.time),
             Table::num(rs.cost.work),
             Table::fixed(static_cast<double>(rn.cost.work) / rs.cost.work,
                          2)});
    }
    t.print();
  }
  std::printf(
      "\nreading: T'/T and W'/W stay bounded as inputs grow 64x --\n"
      "the compilation preserves both orders; the register count column\n"
      "never changes with the input (bounded registers, Thm 7.1).\n"
      "On the straggler workload the staged while schedule's W advantage\n"
      "over naive widens with n (Lemma 7.2 surfaced through the compiler).\n");
  return 0;
}
