// E3 (Theorem 7.1): NSC -> NSA -> BVRAM compilation.
// Paper claim: T' = O(T), W' = O(W^(1+eps)), with a register count fixed by
// the source program.  For each corpus program we report NSC costs, BVRAM
// costs, the ratios across input sizes (flat ratios = preserved orders),
// and the static register count.
//
// Each program is compiled at O0 (naive catalog emission) and through the
// loop-aware src/opt/ pipeline (O2: copy-prop, GVN, LICM, peephole, DCE,
// reg-compact), so the optimizer's constant-factor win is measured
// alongside the paper's asymptotic claims.
//
//   bench_compile [--json PATH]
//
// writes the per-program, per-OptLevel static and executed T/W trajectory
// to PATH (default BENCH_compile.json; same shape as BENCH_machine.json)
// and exits nonzero if the O1 or O2 executed T or W exceeds O0's on any
// corpus program -- the CI perf-smoke gate.  Never gated on timing.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "straggler.hpp"  // the shared Lemma 7.2 adversary (bench/)

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "obs/benchjson.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using nsc::Table;
using nsc::Type;
using nsc::TypeRef;
using nsc::Value;
using nsc::ValueRef;
using nsc::opt::OptLevel;
using nsc::opt::WhileSchedule;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

struct CorpusProgram {
  std::string name;
  L::FuncRef f;
  WhileSchedule sched;
  std::vector<std::pair<std::string, ValueRef>> args;  // label -> input
};

struct JsonEntry {
  std::string program;
  std::string input;
  const char* opt;
  std::size_t static_instrs;
  std::size_t static_regs;
  std::uint64_t time;
  std::uint64_t work;
};

void report(const CorpusProgram& c, std::vector<JsonEntry>& json,
            bool& regressed) {
  auto [dom, cod] = L::check_func(c.f);
  nsc::opt::PipelineStats stats;
  auto naive = nsc::sa::compile_nsc(c.f, OptLevel::O0, c.sched);
  auto o1 = nsc::sa::compile_nsc(c.f, OptLevel::O1, c.sched);
  auto program = nsc::sa::compile_nsc(c.f, OptLevel::O2, c.sched, &stats);
  std::printf(
      "\n-- %s --\n"
      "   naive:     %6zu instructions, %6zu registers\n"
      "   optimized: %6zu instructions, %6zu registers  (-%.1f%% static)\n"
      "   pipeline:  %s\n",
      c.name.c_str(), naive.code.size(), naive.num_regs, program.code.size(),
      program.num_regs,
      100.0 * (1.0 - static_cast<double>(program.code.size()) /
                         static_cast<double>(naive.code.size())),
      stats.show().c_str());
  Table t({"input", "T_nsc", "W_nsc", "T_O0", "W_O0", "T_opt", "W_opt",
           "T'/T", "W'/W"});
  for (const auto& [label, arg] : c.args) {
    auto nscr = L::apply_fn(c.f, arg);
    auto bv0 = nsc::sa::run_compiled(naive, dom, cod, arg);
    auto bv1 = nsc::sa::run_compiled(o1, dom, cod, arg);
    auto bv = nsc::sa::run_compiled(program, dom, cod, arg);
    t.row({label, Table::num(nscr.cost.time), Table::num(nscr.cost.work),
           Table::num(bv0.cost.time), Table::num(bv0.cost.work),
           Table::num(bv.cost.time), Table::num(bv.cost.work),
           Table::fixed(static_cast<double>(bv.cost.time) / nscr.cost.time, 2),
           Table::fixed(static_cast<double>(bv.cost.work) / nscr.cost.work,
                        2)});
    json.push_back({c.name, label, "O0", naive.code.size(), naive.num_regs,
                    bv0.cost.time, bv0.cost.work});
    json.push_back({c.name, label, "O1", o1.code.size(), o1.num_regs,
                    bv1.cost.time, bv1.cost.work});
    json.push_back({c.name, label, "O2", program.code.size(),
                    program.num_regs, bv.cost.time, bv.cost.work});
    // The optimizer invariant holds at every level: executed T/W must
    // never exceed the naive emission's.
    auto check = [&](const char* lvl, const nsc::Cost& got) {
      if (got.time <= bv0.cost.time && got.work <= bv0.cost.work) return;
      regressed = true;
      std::fprintf(stderr,
                   "PERF REGRESSION: %s %s: %s executed T/W %llu/%llu "
                   "exceeds O0's %llu/%llu\n",
                   c.name.c_str(), label.c_str(), lvl,
                   static_cast<unsigned long long>(got.time),
                   static_cast<unsigned long long>(got.work),
                   static_cast<unsigned long long>(bv0.cost.time),
                   static_cast<unsigned long long>(bv0.cost.work));
    };
    check("O1", bv1.cost);
    check("O2", bv.cost);
  }
  t.print();
}

ValueRef index_arg(std::size_t n) {
  std::vector<std::uint64_t> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = i * 2;
  return Value::pair(Value::nat_seq(c),
                     Value::nat_seq({0, n / 3, n / 2, n - 1}));
}

/// The examples/nested_query.cpp query: per department, the count and
/// total of the salaries >= 50 (map over filter over a nested sequence --
/// the segment-descriptor corpus).
L::FuncRef nested_query_func() {
  const TypeRef Dept = Type::seq(N);
  const TypeRef Db = Type::seq(Dept);
  auto well_paid =
      L::lam(N, [](L::TermRef s) { return L::leq(L::nat(50), s); });
  auto per_dept = L::lam(Dept, [&](L::TermRef d) {
    L::TermRef kept = L::apply(P::filter(well_paid, N), d);
    return L::let_in(Dept, kept, [&](L::TermRef k) {
      return L::pair(L::length(k), L::apply(P::sum_nats(), k));
    });
  });
  return L::lam(Db, [&](L::TermRef db) {
    return L::apply(L::map_f(per_dept), db);
  });
}

ValueRef nested_query_arg(std::size_t depts, std::size_t salaries,
                          std::uint64_t seed) {
  nsc::SplitMix64 rng(seed);
  std::vector<ValueRef> db;
  for (std::size_t d = 0; d < depts; ++d) {
    db.push_back(Value::nat_seq(rng.vec(salaries, 100)));
  }
  return Value::seq(db);
}

/// The Theorem 4.2 divide-and-conquer range-sum, translated by
/// translate_maprec (the full-stack corpus program).
L::FuncRef divide_conquer_func() {
  const TypeRef range = Type::prod(N, N);
  auto p = L::lam(range, [](L::TermRef x) {
    return L::leq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(1));
  });
  auto s = L::lam(range, [](L::TermRef x) {
    return L::ite(L::eq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(0)),
                  L::nat(0), L::proj1(x));
  });
  auto d1 = L::lam(range, [](L::TermRef x) {
    return L::pair(L::proj1(x),
                   L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)));
  });
  auto d2 = L::lam(range, [](L::TermRef x) {
    return L::pair(L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)),
                   L::proj2(x));
  });
  auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  return L::translate_maprec(L::schema_g(range, N, p, s, d1, d2, c2));
}

L::FuncRef mapped_while_func() {
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step =
      L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
  return L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(L::lam(N,
                                    [&](L::TermRef v) {
                                      return L::apply(
                                          L::while_f(pred, step), v);
                                    })),
                    x);
  });
}

ValueRef straggler_arg(std::uint64_t n) {
  return Value::nat_seq(nsc::bench::straggler_counts(n));
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_compile.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_compile [--json PATH]\n");
      return 2;
    }
  }

  std::printf(
      "E3: Theorem 7.1 -- compiling NSC to the BVRAM\n"
      "paper: T' = O(T), W' = O(W^(1+eps)); the register counts printed\n"
      "per program depend only on the source, never on the input.\n"
      "T_O0/W_O0: naive catalog emission; T_opt/W_opt: the loop-aware\n"
      "src/opt/ pipeline (verify, copy-prop, GVN, LICM, peephole, DCE,\n"
      "reg-compact).\n");

  std::vector<CorpusProgram> corpus;
  {
    CorpusProgram c{"index", P::index(N), WhileSchedule::naive(), {}};
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      c.args.emplace_back("n=" + std::to_string(n), index_arg(n));
    }
    corpus.push_back(std::move(c));
  }
  {
    auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(512)); });
    auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
    CorpusProgram c{"filter-map",
                    L::lam(NSeq,
                           [&](L::TermRef x) {
                             return L::apply(L::map_f(dbl),
                                             L::apply(P::filter(keep, N), x));
                           }),
                    WhileSchedule::naive(),
                    {}};
    nsc::SplitMix64 rng(5);
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      c.args.emplace_back("n=" + std::to_string(n),
                          Value::nat_seq(rng.vec(n, 1024)));
    }
    corpus.push_back(std::move(c));
  }
  {
    CorpusProgram c{"sum-while", P::sum_nats(), WhileSchedule::naive(), {}};
    for (std::size_t n : {64u, 256u, 1024u}) {
      c.args.emplace_back("n=" + std::to_string(n),
                          Value::nat_seq(std::vector<std::uint64_t>(n, 3)));
    }
    corpus.push_back(std::move(c));
  }
  {
    CorpusProgram c{"nested_query", nested_query_func(),
                    WhileSchedule::naive(), {}};
    for (std::size_t d : {8u, 32u, 64u}) {
      c.args.emplace_back("depts=" + std::to_string(d),
                          nested_query_arg(d, 16, 7 + d));
    }
    corpus.push_back(std::move(c));
  }
  {
    CorpusProgram c{"divide_conquer", divide_conquer_func(),
                    WhileSchedule::naive(), {}};
    for (std::uint64_t n : {32ull, 128ull, 512ull}) {
      c.args.emplace_back("n=" + std::to_string(n),
                          Value::pair(Value::nat(0), Value::nat(n)));
    }
    corpus.push_back(std::move(c));
  }
  {
    CorpusProgram c{"mapped-while-naive", mapped_while_func(),
                    WhileSchedule::naive(), {}};
    for (std::uint64_t n : {256ull, 1024ull, 4096ull}) {
      c.args.emplace_back("n=" + std::to_string(n), straggler_arg(n));
    }
    corpus.push_back(std::move(c));
  }
  {
    CorpusProgram c{"mapped-while-staged", mapped_while_func(),
                    WhileSchedule::staged({1, 2}), {}};
    for (std::uint64_t n : {256ull, 1024ull, 4096ull}) {
      c.args.emplace_back("n=" + std::to_string(n), straggler_arg(n));
    }
    corpus.push_back(std::move(c));
  }

  std::vector<JsonEntry> json;
  bool regressed = false;
  for (const auto& c : corpus) report(c, json, regressed);

  std::printf(
      "\nreading: T'/T and W'/W stay bounded as inputs grow --\n"
      "the compilation preserves both orders; the register count column\n"
      "never changes with the input (bounded registers, Thm 7.1).\n"
      "On the straggler workload the staged while schedule's W advantage\n"
      "over naive widens with n (Lemma 7.2 surfaced through the compiler).\n");

  nsc::obs::BenchReport report_file(json_path, "bvram-bench-compile/v2");
  if (!report_file.ok()) return 1;
  std::FILE* f = report_file.out();
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < json.size(); ++i) {
    const JsonEntry& e = json[i];
    std::fprintf(
        f,
        "    {\"program\": \"%s\", \"input\": \"%s\", \"opt\": \"%s\", "
        "\"static_instrs\": %zu, \"static_regs\": %zu, \"T\": %llu, "
        "\"W\": %llu}%s\n",
        e.program.c_str(), e.input.c_str(), e.opt, e.static_instrs,
        e.static_regs, static_cast<unsigned long long>(e.time),
        static_cast<unsigned long long>(e.work),
        i + 1 < json.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  report_file.close();

  if (regressed) {
    std::fprintf(stderr,
                 "FAIL: O2 executed T/W regressed vs O0 on some corpus "
                 "program (see above)\n");
    return 1;
  }
  return 0;
}
