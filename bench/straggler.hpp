// The Lemma 7.2 straggler adversary, shared by bench_seqwhile and
// bench_compile so every table labeled "straggler" measures the same
// workload: n - sqrt(n) elements finish in round 1 and sqrt(n)
// stragglers finish on distinct rounds 2..sqrt(n)+1.  W_ideal =
// sum_i t_i = O(n), but a schedule that re-touches finished elements
// pays up to Theta(n^1.5) -- the Lemma 7.2 bad case.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/checked.hpp"

namespace nsc::bench {

inline std::vector<std::uint64_t> straggler_counts(std::uint64_t n) {
  const std::uint64_t m = isqrt(n);
  std::vector<std::uint64_t> counts(n, 1);
  for (std::uint64_t j = 0; j < m; ++j) counts[n - m + j] = j + 2;
  return counts;
}

/// W_ideal for the adversary: the sum of the per-element round counts.
inline std::uint64_t straggler_ideal(const std::vector<std::uint64_t>& c) {
  return std::accumulate(c.begin(), c.end(), std::uint64_t{0});
}

}  // namespace nsc::bench
