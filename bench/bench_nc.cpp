// E7 (Propositions 6.1/6.2): NSC with polylog time and polynomial work
// coincides with NC (for NC arithmetic ops).  Empirical shape: programs in
// the fragment keep polylog measured T across geometrically growing
// inputs.  We sweep three NC-style programs.
#include <cmath>
#include <cstdio>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace nsc;
  namespace L = nsc::lang;
  namespace P = nsc::lang::prelude;
  const TypeRef N = Type::nat();
  std::printf(
      "E7: Props 6.1/6.2 -- the NC fragment of NSC\n"
      "claim: polylog-T / poly-W programs characterize NC; measured T must\n"
      "stay polylogarithmic while inputs grow geometrically.\n\n");

  struct Row {
    const char* name;
    L::FuncRef f;
  };
  auto even = L::lam(N, [](L::TermRef v) {
    return L::eq(L::mod_t(v, L::nat(2)), L::nat(0));
  });
  std::vector<Row> programs{
      {"sum (log-depth reduce)", P::sum_nats()},
      {"max (log-depth reduce)", P::max_nats()},
      {"filter-even (O(1) depth)", P::filter(even, N)},
  };

  SplitMix64 rng(17);
  for (const auto& row : programs) {
    Table t({"n", "T", "W", "T/lg^2 n", "W/n"});
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      auto arg = Value::nat_seq(rng.vec(n, 1 << 16));
      auto r = L::apply_fn(row.f, arg);
      const double lg = std::log2(static_cast<double>(n));
      t.row({Table::num(n), Table::num(r.cost.time), Table::num(r.cost.work),
             Table::fixed(r.cost.time / (lg * lg), 2),
             Table::fixed(static_cast<double>(r.cost.work) / n, 1)});
    }
    std::printf("-- %s --\n", row.name);
    t.print();
    std::printf("\n");
  }
  std::printf(
      "reading: T columns grow ~log or stay constant while n grows 64x;\n"
      "W/n stays bounded -- the polylog-time poly-work fragment.\n");
  return 0;
}
