// bench_serve: prices the serve layer's compile-once / run-many claim.
//
// For each corpus program, three phases answer the same N requests:
//
//   cold      every request pays the whole pipeline: frontend + flatten +
//             optimize + run (what `nscc run` costs per invocation);
//   cache-hit compile once into the ProgramCache, then N solo runs
//             against the shared artifact (batching off);
//   batched   same N requests coalesced into segment-descriptor batches
//             (Value::seq of the queued arguments IS the SEQREP concat)
//             and executed by the cached lifted program, map f.
//
// The harness is also a correctness gate, exercised by CI perf-smoke:
//
//   * the cache-hit phase must never recompile (cache misses must stay
//     at exactly 1 per program) -- exit 1 otherwise;
//   * batched responses must be bit-identical to the solo runs of the
//     same requests -- exit 1 otherwise;
//   * cache-hit throughput must beat cold by >= 10x, and batched must
//     beat cache-hit, on every program -- exit 1 otherwise.
//
// Writes BENCH_serve.json (schema bvram-bench-serve/v1, with the obs
// provenance envelope) for the committed-numbers workflow.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "front/front.hpp"
#include "obs/benchjson.hpp"
#include "object/value.hpp"
#include "sa/compile.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"
#include "support/prng.hpp"

namespace {

using namespace nsc;
namespace F = nsc::front;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         1e6;
}

struct BenchProgram {
  const char* name;
  const char* source;
  /// Build the i-th request argument (deterministic).
  ValueRef (*arg)(std::uint64_t i, SplitMix64& rng);
};

ValueRef flat_arg(std::uint64_t i, SplitMix64& rng) {
  std::vector<std::uint64_t> xs = rng.vec(48, 100);
  xs.push_back(i % 97);
  return Value::nat_seq(xs);
}

ValueRef nested_arg(std::uint64_t i, SplitMix64& rng) {
  std::vector<ValueRef> segs;
  const std::size_t n = 3 + i % 4;
  for (std::size_t s = 0; s < n; ++s) {
    segs.push_back(Value::nat_seq(rng.vec(1 + (i + s) % 8, 50)));
  }
  return Value::seq(std::move(segs));
}

const BenchProgram kPrograms[] = {
    {"filter_square_zip",
     "fn small(v : nat) : bool = v < 10\n"
     "fn main(xs : [nat]) : [nat * nat] =\n"
     "  let kept = filter(small, xs) in\n"
     "  zip(enumerate(kept), [v * v | v <- kept])\n",
     flat_arg},
    {"sum_of_squares",
     "fn main(xs : [nat]) : nat = sum([x * x | x <- xs])\n",
     flat_arg},
    {"segment_sums",
     "fn seg_sum(s : [nat]) : nat = sum(s)\n"
     "fn main(db : [[nat]]) : [nat] = map(seg_sum, db)\n",
     nested_arg},
};

struct Row {
  std::string program;
  std::size_t requests = 0;
  std::size_t cold_iters = 0;
  double cold_ms_per_req = 0;
  double hit_ms_per_req = 0;
  double batched_ms_per_req = 0;
  double hit_over_cold = 0;
  double batched_over_hit = 0;
  double compile_ms = 0;
  std::uint64_t hit_phase_misses = 0;  ///< must be 1 (the initial load)
  std::uint64_t batch_runs = 0;
  double batch_occupancy = 0;
  bool outputs_bitidentical = false;
};

struct Options {
  std::string json_path = "BENCH_serve.json";
  std::size_t requests = 256;
  std::size_t cold_iters = 5;
  std::size_t max_batch = 32;
};

int run_bench(const Options& opt) {
  std::vector<Row> rows;
  bool failed = false;

  for (const BenchProgram& bp : kPrograms) {
    Row row;
    row.program = bp.name;
    row.requests = opt.requests;
    row.cold_iters = opt.cold_iters;

    // Deterministic request set, shared by all three phases.
    SplitMix64 rng(7);
    std::vector<ValueRef> args;
    for (std::size_t i = 0; i < opt.requests; ++i) {
      args.push_back(bp.arg(i, rng));
    }

    // Resolve once for the cold phase's compile_program calls (the
    // frontend is shared by all phases; the compile being priced is the
    // flattening + optimizer pipeline, the dominant cost).
    const F::SourceFile src(std::string(bp.name) + ".nsc", bp.source);
    const F::ResolvedModule mod = F::compile_file(src);
    const F::ResolvedFn& fn = mod.main();
    serve::CacheKey key;
    key.source_hash = serve::hash_source(bp.source, fn.name);

    // ---- cold: compile + run per request ------------------------------
    const auto cold0 = Clock::now();
    ValueRef cold_value;
    for (std::size_t i = 0; i < opt.cold_iters; ++i) {
      const auto prog =
          serve::compile_program(bp.name, fn.fn, fn.dom, fn.cod, key);
      cold_value = sa::run_compiled(prog->unit, prog->dom, prog->cod,
                                    args[i % args.size()])
                       .value;
    }
    row.cold_ms_per_req =
        ms_between(cold0, Clock::now()) / static_cast<double>(opt.cold_iters);

    // ---- cache-hit: compile once, N solo runs -------------------------
    std::vector<ValueRef> solo_values(args.size());
    {
      serve::ServeConfig cfg;
      cfg.workers = 1;
      cfg.batching = false;
      serve::Service svc(cfg);
      const auto prog = svc.load(bp.name, bp.source);
      row.compile_ms =
          static_cast<double>(prog->compile_wall_ns) / 1e6;
      const auto hit0 = Clock::now();
      std::vector<std::future<serve::Response>> futs;
      futs.reserve(args.size());
      for (const ValueRef& a : args) futs.push_back(svc.submit(prog, a));
      for (std::size_t i = 0; i < futs.size(); ++i) {
        serve::Response r = futs[i].get();
        if (!r.ok()) {
          std::fprintf(stderr, "FAIL: %s solo request %zu: %s\n", bp.name, i,
                       r.error.c_str());
          failed = true;
        }
        solo_values[i] = r.value;
      }
      row.hit_ms_per_req = ms_between(hit0, Clock::now()) /
                           static_cast<double>(args.size());
      // Reload: this must be a pure cache hit.
      const auto again = svc.load(bp.name, bp.source);
      if (again.get() != prog.get()) {
        std::fprintf(stderr, "FAIL: %s reload returned a new artifact\n",
                     bp.name);
        failed = true;
      }
      row.hit_phase_misses = svc.cache().stats().misses;
      if (row.hit_phase_misses != 1) {
        std::fprintf(stderr,
                     "FAIL: %s cache-hit phase recompiled (%llu misses)\n",
                     bp.name,
                     static_cast<unsigned long long>(row.hit_phase_misses));
        failed = true;
      }
    }

    // ---- batched: same requests, coalesced ----------------------------
    {
      serve::ServeConfig cfg;
      cfg.workers = 1;  // isolate batching from thread parallelism
      cfg.batching = true;
      cfg.max_batch = opt.max_batch;
      serve::Service svc(cfg);
      const auto prog = svc.load(bp.name, bp.source);
      const auto bat0 = Clock::now();
      svc.pause();
      std::vector<std::future<serve::Response>> futs;
      futs.reserve(args.size());
      for (const ValueRef& a : args) futs.push_back(svc.submit(prog, a));
      svc.resume();
      row.outputs_bitidentical = true;
      for (std::size_t i = 0; i < futs.size(); ++i) {
        serve::Response r = futs[i].get();
        if (!r.ok() || !Value::equal(r.value, solo_values[i])) {
          row.outputs_bitidentical = false;
          std::fprintf(stderr,
                       "FAIL: %s batched request %zu diverged from solo\n",
                       bp.name, i);
          failed = true;
        }
      }
      row.batched_ms_per_req = ms_between(bat0, Clock::now()) /
                               static_cast<double>(args.size());
      svc.drain();
      const serve::ServeStats st = svc.stats();
      row.batch_runs = st.batch_runs;
      row.batch_occupancy = st.batch_occupancy;
    }

    row.hit_over_cold = row.cold_ms_per_req / row.hit_ms_per_req;
    row.batched_over_hit = row.hit_ms_per_req / row.batched_ms_per_req;
    if (row.hit_over_cold < 10.0) {
      std::fprintf(stderr,
                   "FAIL: %s cache-hit speedup %.1fx is below the 10x gate\n",
                   bp.name, row.hit_over_cold);
      failed = true;
    }
    if (row.batched_over_hit <= 1.0) {
      std::fprintf(stderr,
                   "FAIL: %s batching (%.2fx) did not beat one-at-a-time\n",
                   bp.name, row.batched_over_hit);
      failed = true;
    }
    rows.push_back(std::move(row));
  }

  std::printf("%-20s %12s %12s %12s %10s %10s %10s\n", "program", "cold ms/rq",
              "hit ms/rq", "batch ms/rq", "hit/cold", "batch/hit", "occup");
  for (const Row& r : rows) {
    std::printf("%-20s %12.3f %12.4f %12.4f %9.1fx %9.2fx %10.1f\n",
                r.program.c_str(), r.cold_ms_per_req, r.hit_ms_per_req,
                r.batched_ms_per_req, r.hit_over_cold, r.batched_over_hit,
                r.batch_occupancy);
  }
  std::printf(
      "\nreading: 'cold' pays compile+run per request; 'hit' amortizes one\n"
      "compile over %zu requests; 'batch' additionally coalesces queued\n"
      "requests into one segment-descriptor level and runs map(f) once per\n"
      "batch.  Batched outputs are checked bit-identical to solo runs.\n",
      opt.requests);

  obs::BenchReport report(opt.json_path, "bvram-bench-serve/v1");
  if (!report.ok()) return 1;
  std::FILE* f = report.out();
  std::fprintf(f, "  \"requests\": %zu,\n  \"cold_iters\": %zu,\n",
               opt.requests, opt.cold_iters);
  std::fprintf(f, "  \"max_batch\": %zu,\n", opt.max_batch);
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"program\": \"%s\", \"requests\": %zu, "
        "\"compile_ms\": %.3f, "
        "\"cold_ms_per_req\": %.4f, \"hit_ms_per_req\": %.4f, "
        "\"batched_ms_per_req\": %.4f, \"hit_over_cold\": %.2f, "
        "\"batched_over_hit\": %.2f, \"batch_runs\": %llu, "
        "\"batch_occupancy\": %.2f, \"cache_misses_hit_phase\": %llu, "
        "\"outputs_bitidentical\": %s}%s\n",
        r.program.c_str(), r.requests, r.compile_ms, r.cold_ms_per_req,
        r.hit_ms_per_req, r.batched_ms_per_req, r.hit_over_cold,
        r.batched_over_hit, static_cast<unsigned long long>(r.batch_runs),
        r.batch_occupancy,
        static_cast<unsigned long long>(r.hit_phase_misses),
        r.outputs_bitidentical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"failed\": %s\n", failed ? "true" : "false");
  report.close();

  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      opt.requests = static_cast<std::size_t>(
          std::max(1ll, std::atoll(argv[++i])));
    } else if (arg == "--cold-iters" && i + 1 < argc) {
      opt.cold_iters = static_cast<std::size_t>(
          std::max(1ll, std::atoll(argv[++i])));
    } else if (arg == "--max-batch" && i + 1 < argc) {
      opt.max_batch = static_cast<std::size_t>(
          std::max(1ll, std::atoll(argv[++i])));
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--json PATH] [--requests N] "
                   "[--cold-iters K] [--max-batch K]\n");
      return 2;
    }
  }
  std::printf(
      "bench_serve: cold compile vs compiled-program cache vs "
      "segment-descriptor batching, %zu requests per phase.\n\n",
      opt.requests);
  return run_bench(opt);
}
