// E10 (engineering): wall-clock check that the BVRAM's vector instructions
// parallelize on real hardware (the thread-pool backend), using
// google-benchmark.  The cost model is unchanged; this validates that the
// machine's "one instruction = one parallel step" is implementable.
#include <benchmark/benchmark.h>

#include "bvram/machine.hpp"
#include "support/parallel.hpp"

namespace {

using namespace nsc::bvram;

Program make_arith_chain() {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  for (int i = 0; i < 24; ++i) {
    a.arith(z, ArithOp::Add, x, y);
    a.arith(x, ArithOp::Mul, z, y);
    a.arith(y, ArithOp::Monus, x, z);
  }
  a.halt();
  return a.finish(2, 3);
}

void run_backend(benchmark::State& state, bool parallel) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> v1(n), v2(n);
  for (std::size_t i = 0; i < n; ++i) {
    v1[i] = i;
    v2[i] = 2 * i + 1;
  }
  auto program = make_arith_chain();
  RunConfig cfg;
  cfg.parallel_backend = parallel;
  for (auto _ : state) {
    auto r = run(program, {v1, v2}, cfg);
    benchmark::DoNotOptimize(r.outputs);
  }
  state.SetItemsProcessed(state.iterations() * n * 72);
}

void BM_Serial(benchmark::State& state) { run_backend(state, false); }
void BM_Parallel(benchmark::State& state) { run_backend(state, true); }

BENCHMARK(BM_Serial)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parallel)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
