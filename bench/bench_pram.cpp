// E6 (Proposition 3.2): simulate an NSC computation on a CREW PRAM with
// scan primitives and p processors in O(T + W/p) steps.  We compile a
// program, record its BVRAM trace (same T/W orders as the NSC source), and
// Brent-schedule it across a processor sweep.
#include <cstdio>

#include "nsc/prelude.hpp"
#include "pram/pram.hpp"
#include "sa/compile.hpp"
#include "support/table.hpp"

int main() {
  using namespace nsc;
  namespace P = nsc::lang::prelude;
  std::printf(
      "E6: Prop 3.2 -- CREW PRAM with scans, p-processor schedule\n"
      "claim: simulated time = O(T + W/p)\n\n");

  auto program = sa::compile_nsc(P::sum_nats());
  std::vector<std::uint64_t> v(1 << 12, 3);
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  auto result = bvram::run(program, {v}, cfg);
  std::printf("workload: sum of 4096 naturals; T=%llu, W=%llu\n\n",
              static_cast<unsigned long long>(result.cost.time),
              static_cast<unsigned long long>(result.cost.work));

  Table t({"p", "scheduled steps", "T + W/p bound", "sched/bound"});
  for (std::size_t p : {1u, 2u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const auto sched = pram::scheduled_time(result.trace, p);
    const auto bound =
        pram::brent_bound(result.cost.time, result.cost.work, p);
    t.row({Table::num(p), Table::num(sched), Table::num(bound),
           Table::fixed(static_cast<double>(sched) / bound, 2)});
  }
  t.print();
  std::printf(
      "\nreading: scheduled steps track T + W/p within a constant across\n"
      "a 4096x processor sweep: work-bound for small p, time-bound (the\n"
      "critical path) once p ~ W/T.\n");
  return 0;
}
