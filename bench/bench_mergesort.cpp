// E1 (Figures 1-3, section 5): Valiant's mergesort in NSC.
// Paper claim: T = O(log n log log n), W = O(n log n) work for the
// optimal variant; the as-written Figure 1 algorithm we transcribe has
// W = O(n log n log log n).  We report T / (log2 n * log2 log2 n) and
// W / (n log2 n): both ratios should flatten as n grows.
#include <cmath>
#include <cstdio>

#include "algorithms/valiant.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace nsc;
  std::printf(
      "E1: Valiant mergesort (Figures 1-3) -- NSC costs, Definition 3.1\n"
      "paper: T = O(log n log log n); W = O(n log n (log log n))\n\n");
  Table t({"n", "T", "W", "T/(lg n lglg n)", "W/(n lg n)"});
  SplitMix64 rng(2026);
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    auto v = rng.vec(n, 1u << 30);
    auto r = alg::eval_valiant_mergesort(Value::nat_seq(v));
    const double lg = std::log2(static_cast<double>(n));
    const double lglg = std::log2(lg);
    t.row({Table::num(n), Table::num(r.cost.time), Table::num(r.cost.work),
           Table::fixed(r.cost.time / (lg * lglg), 1),
           Table::fixed(r.cost.work / (n * lg), 1)});
  }
  t.print();
  std::printf(
      "\nshape check: the T column grows ~polylog while n grows 64x;\n"
      "flattening normalized columns indicate the claimed exponents.\n");
  return 0;
}
