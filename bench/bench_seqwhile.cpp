// E4 (Lemma 7.2, the Map Lemma's while case): SEQ(while) scheduling
// ablation at the BVRAM level.
//
// Workload: n elements; element i must be stepped t_i times (decrement to
// zero), with a skewed distribution of t_i.  Three hand-assembled BVRAM
// programs compute the same result:
//   naive   -- every iteration touches all n slots (no extraction);
//   eager   -- finished elements are packed out each round and appended to
//              a single accumulator V1 (touched on every extraction round);
//   staged  -- the Lemma 7.2 schedule: extractions append to V1, and V1 is
//              flushed into the archive V2 only when the total number of
//              extracted elements crosses ceil(n^(k*eps)), so V2 is touched
//              only ~1/eps times and each element rides V1 at most
//              t_i * n^eps appends.
// The registers are identical across eps values (only threshold constants
// change) -- the "registers independent of eps" clause of Theorem 7.1.
// We report W / W_ideal where W_ideal = sum_i t_i (the work of the
// iterations themselves).
// The same schedules are also emitted by the compiler itself for any
// lifted while (opt::WhileSchedule, src/sa/compile.cpp): the second table
// below runs the NSC source `map (while v > 0 do v - 1)` through
// compile_nsc under each schedule on the same workload, so the
// hand-assembled bound can be compared against the compiled one (the
// compiled rows carry the catalog's constant factors plus the exit-time
// order-restoring replay, which the order-oblivious hand programs skip).
#include <cstdio>

#include "straggler.hpp"  // the shared Lemma 7.2 adversary (bench/)

#include "bvram/machine.hpp"
#include "nsc/build.hpp"
#include "nsc/typecheck.hpp"
#include "object/value.hpp"
#include "sa/compile.hpp"
#include "support/checked.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

using namespace nsc;
using namespace nsc::bvram;

/// naive: loop while any positive; V0 -= 1 (monus) over the whole vector.
Program make_naive() {
  Assembler a;
  auto v = a.reg();
  auto ones = a.reg();
  auto nz = a.reg();
  auto lenr = a.reg();
  auto one = a.reg();
  a.load_const(one, 1);
  a.length(lenr, v);
  a.bm_route(ones, v, lenr, one);
  auto top = a.fresh_label();
  auto done = a.fresh_label();
  a.bind(top);
  a.select(nz, v);
  a.jump_if_empty(nz, done);
  a.arith(v, lang::ArithOp::Monus, v, ones);
  a.jump(top);
  a.bind(done);
  a.halt();
  return a.finish(1, 1);
}

/// shared helper: emit "pack v by bits" (keep bits=1 slots).
std::uint32_t emit_pack(Assembler& a, std::uint32_t v, std::uint32_t bits) {
  auto bound = a.reg();
  a.select(bound, bits);
  auto out = a.reg();
  a.bm_route(out, bound, bits, v);
  return out;
}

/// eager: active set packs down each round; finished append to V1 at once.
Program make_eager() {
  Assembler a;
  auto v = a.reg();     // active
  auto acc = a.reg();   // V1: all finished so far
  auto one = a.reg();
  a.load_const(one, 1);
  a.load_empty(acc);
  auto top = a.fresh_label();
  auto done = a.fresh_label();
  a.bind(top);
  a.jump_if_empty(v, done);
  // step all active
  auto lenr = a.reg();
  a.length(lenr, v);
  auto ones = a.reg();
  a.bm_route(ones, v, lenr, one);
  a.arith(v, lang::ArithOp::Monus, v, ones);
  // finished = zeros; survivors = nonzero
  auto surv_bits = a.reg();
  {
    // bits = 1 - (1 - v) under monus: 1 if v > 0
    auto t1 = a.reg();
    a.arith(t1, lang::ArithOp::Monus, ones, v);
    a.arith(surv_bits, lang::ArithOp::Monus, ones, t1);
  }
  auto fin_bits = a.reg();
  a.arith(fin_bits, lang::ArithOp::Monus, ones, surv_bits);
  auto finished = emit_pack(a, v, fin_bits);
  auto skip = a.fresh_label();
  a.jump_if_empty(finished, skip);
  a.append(acc, acc, finished);  // touches the whole accumulator
  a.bind(skip);
  auto packed = emit_pack(a, v, surv_bits);
  a.move(v, packed);
  a.jump(top);
  a.bind(done);
  a.halt();
  return a.finish(1, 2);
}

//// staged: like eager, but finished go to V1; V1 flushes into V2 only when
/// the total extracted count crosses the next threshold ceil(n^(k*eps)).
Program make_staged(std::uint64_t n, Rational eps) {
  Assembler a;
  auto v = a.reg();
  auto v1 = a.reg();
  auto v2 = a.reg();
  auto cnt = a.reg();   // [extracted so far]
  auto thr = a.reg();   // [next flush threshold]
  auto one = a.reg();
  a.load_const(one, 1);
  a.load_empty(v1);
  a.load_empty(v2);
  a.load_const(cnt, 0);
  a.load_const(thr, pow_eps(n, eps));
  const std::uint64_t step_factor = pow_eps(n, eps);
  auto top = a.fresh_label();
  auto done = a.fresh_label();
  a.bind(top);
  a.jump_if_empty(v, done);
  auto lenr = a.reg();
  a.length(lenr, v);
  auto ones = a.reg();
  a.bm_route(ones, v, lenr, one);
  a.arith(v, lang::ArithOp::Monus, v, ones);
  auto surv_bits = a.reg();
  {
    auto t1 = a.reg();
    a.arith(t1, lang::ArithOp::Monus, ones, v);
    a.arith(surv_bits, lang::ArithOp::Monus, ones, t1);
  }
  auto fin_bits = a.reg();
  a.arith(fin_bits, lang::ArithOp::Monus, ones, surv_bits);
  auto finished = emit_pack(a, v, fin_bits);
  auto nfin = a.reg();
  a.length(nfin, finished);
  a.arith(cnt, lang::ArithOp::Add, cnt, nfin);
  // only touch V1 when something was extracted
  auto skip_app = a.fresh_label();
  a.jump_if_empty(finished, skip_app);
  a.append(v1, v1, finished);
  a.bind(skip_app);
  // flush V1 -> V2 when cnt >= thr
  auto below = a.reg();
  a.arith(below, lang::ArithOp::Monus, thr, cnt);
  auto below_sel = a.reg();
  a.select(below_sel, below);
  auto no_flush = a.fresh_label();
  auto flushed = a.fresh_label();
  a.jump_if_empty(below_sel, flushed);  // below > 0: skip flush
  a.jump(no_flush);
  a.bind(flushed);
  a.append(v2, v2, v1);
  a.load_empty(v1);
  {
    auto mul = a.reg();
    a.load_const(mul, step_factor);
    a.arith(thr, lang::ArithOp::Mul, thr, mul);
  }
  a.bind(no_flush);
  auto packed = emit_pack(a, v, surv_bits);
  a.move(v, packed);
  a.jump(top);
  a.bind(done);
  a.append(v2, v2, v1);  // final drain
  a.halt();
  return a.finish(1, 3);
}

/// The straggler workload as NSC source: map (while v > 0 do v - 1).
lang::FuncRef nsc_decrement() {
  namespace L = nsc::lang;
  const TypeRef N = Type::nat();
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
  return L::lam(Type::seq(N), [&](L::TermRef x) {
    return L::apply(L::map_f(L::lam(N,
                                    [&](L::TermRef v) {
                                      return L::apply(L::while_f(pred, step),
                                                      v);
                                    })),
                    x);
  });
}

}  // namespace

int main() {
  std::printf(
      "E4: Lemma 7.2 -- SEQ(while) buffer scheduling on the BVRAM\n"
      "workload: a 1-round bulk plus sqrt(n) stragglers on distinct rounds\n"
      "(the accumulator-touching adversary).  W_ideal = sum_i t_i = O(n).\n\n");
  Table t({"n", "W_ideal", "naive/ideal", "eager/ideal", "staged e=1/2",
           "staged e=1/4"});
  for (std::uint64_t n : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    // n - m elements finish in round 1; m = sqrt(n) stragglers finish at
    // distinct rounds 2..m+1.  Base work is O(n) but an eagerly-touched
    // accumulator of ~n elements is re-appended on each of the m
    // extraction rounds: Theta(n^1.5) overhead, the Lemma 7.2 bad case.
    const auto counts = nsc::bench::straggler_counts(n);
    const std::uint64_t ideal = nsc::bench::straggler_ideal(counts);
    auto run_w = [&](const Program& p) {
      return run(p, {counts}).cost.work;
    };
    const double naive = static_cast<double>(run_w(make_naive())) / ideal;
    const double eager = static_cast<double>(run_w(make_eager())) / ideal;
    const double st2 =
        static_cast<double>(run_w(make_staged(n, {1, 2}))) / ideal;
    const double st4 =
        static_cast<double>(run_w(make_staged(n, {1, 4}))) / ideal;
    t.row({Table::num(n), Table::num(ideal), Table::fixed(naive, 2),
           Table::fixed(eager, 2), Table::fixed(st2, 2),
           Table::fixed(st4, 2)});
  }
  t.print();
  std::printf(
      "\nreading: the eager accumulator is re-touched every extraction\n"
      "round (ratio grows ~linearly in n/ideal terms); the staged schedule\n"
      "keeps the overhead bounded by ~n^eps as Lemma 7.2 requires.\n"
      "Register counts: naive=%zu eager=%zu staged=%zu (eps-independent).\n",
      make_naive().num_regs, make_eager().num_regs,
      make_staged(1024, {1, 2}).num_regs);

  std::printf(
      "\ncompiled from NSC (map (while v > 0 do v - 1), compile_nsc at O2\n"
      "under opt::WhileSchedule), same workload -- the compiler emits the\n"
      "same three schedules, plus the exit-time order-restoring replay:\n\n");
  auto f = nsc_decrement();
  auto [dom, cod] = lang::check_func(f);
  auto pn = sa::compile_nsc(f, opt::OptLevel::O2, opt::WhileSchedule::naive());
  auto pe = sa::compile_nsc(f, opt::OptLevel::O2, opt::WhileSchedule::eager());
  auto ps2 =
      sa::compile_nsc(f, opt::OptLevel::O2, opt::WhileSchedule::staged({1, 2}));
  auto ps4 =
      sa::compile_nsc(f, opt::OptLevel::O2, opt::WhileSchedule::staged({1, 4}));
  Table ct({"n", "W_ideal", "naive/ideal", "eager/ideal", "staged e=1/2",
            "staged e=1/4"});
  for (std::uint64_t n : {64ull, 256ull, 1024ull, 4096ull}) {
    const auto counts = nsc::bench::straggler_counts(n);
    const std::uint64_t ideal = nsc::bench::straggler_ideal(counts);
    auto arg = Value::nat_seq(counts);
    auto w_of = [&](const Program& p) {
      return sa::run_compiled(p, dom, cod, arg).cost.work;
    };
    ct.row({Table::num(n), Table::num(ideal),
            Table::fixed(static_cast<double>(w_of(pn)) / ideal, 1),
            Table::fixed(static_cast<double>(w_of(pe)) / ideal, 1),
            Table::fixed(static_cast<double>(w_of(ps2)) / ideal, 1),
            Table::fixed(static_cast<double>(w_of(ps4)) / ideal, 1)});
  }
  ct.print();
  std::printf(
      "\nreading: the compiled naive ratio grows with n exactly like the\n"
      "hand-assembled one (catalog constants aside); the compiled staged\n"
      "schedule stays bounded and its register file is identical across\n"
      "eps values: staged(1/2)=%zu staged(1/4)=%zu registers.\n",
      ps2.num_regs, ps4.num_regs);
  return 0;
}
