// The execution-engine benchmark harness: runs the compiled example
// corpus plus adversarial route/scan microbenchmarks under all six
// configurations --
//
//     v1  = run_reference (allocate-per-instruction interpreter)
//     v2  = run            (pooled register file, in-place kernels)
//     v2f = run + fusion   (elementwise groups as single-pass kernels)
//     x  serial | parallel backend
//
// -- verifies that outputs, T, and W agree bit-for-bit across every
// configuration (exit code 1 on any mismatch: the CI perf-smoke gate),
// and writes the wall-clock trajectory to a JSON file so future PRs can
// compare machine-readable numbers instead of prose.  The fused
// configurations also report the engine's fused-group counters (groups
// executed, instructions covered, buffers elided, fallbacks), taken
// from an untimed profiled run.
//
//   bench_machine [--json PATH] [--reps K] [--scale N] [--full]
//
// --full adds n = 10^7 to the default {10^5, 10^6} sweep; --scale N
// replaces the sweep with the single size N.  Timing rows are never
// part of the failure criterion (shared runners are noisy); only
// cross-configuration output/cost mismatches fail.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bvram/machine.hpp"
#include "nsc/build.hpp"
#include "nsc/prelude.hpp"
#include "obs/benchjson.hpp"
#include "nsc/typecheck.hpp"
#include "opt/fuse.hpp"
#include "opt/liveness.hpp"
#include "sa/compile.hpp"
#include "sa/layout.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using nsc::Table;
using nsc::Type;
using nsc::TypeRef;
using nsc::Value;
using nsc::ValueRef;
using nsc::bvram::Assembler;
using nsc::bvram::Program;
using nsc::bvram::RunConfig;
using nsc::bvram::RunResult;
using Vec = std::vector<std::uint64_t>;
using nsc::lang::ArithOp;

struct Case {
  std::string name;
  Program program;  // annotated (v1 ignores the annotation)
  std::vector<Vec> inputs;
};

struct Entry {
  std::string bench;
  std::size_t n;
  const char* engine;
  const char* backend;
  bool fuse = false;
  double ms = 0;
  std::uint64_t time = 0;
  std::uint64_t work = 0;
  std::uint64_t checksum = 0;
};

std::uint64_t checksum(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (const auto& v : r.outputs) {
    mix(v.size());
    for (auto x : v) mix(x);
  }
  mix(r.cost.time);
  mix(r.cost.work);
  return h;
}

Vec iota_mod(std::size_t n, std::uint64_t mod) {
  Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (i * 2654435761u) % mod;
  return v;
}

// ---------------------------------------------------------------------------
// microbenchmarks (hand-assembled adversaries)
// ---------------------------------------------------------------------------

Case make_move_chain(std::size_t n) {
  // 24 Moves cycling 4 temporaries: with last-use annotation every one is
  // an O(1) buffer swap; v1 copies 24n words through 24 fresh allocations.
  Assembler a;
  a.reserve_regs(1);
  std::uint32_t t[4];
  for (auto& r : t) r = a.reg();
  a.move(t[0], 0);
  for (int i = 1; i < 24; ++i) a.move(t[i % 4], t[(i - 1) % 4]);
  a.move(0, t[23 % 4]);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"move-chain", std::move(p), {iota_mod(n, 1u << 20)}};
}

Case make_arith_mix(std::size_t n) {
  // A 16-op elementwise chain (add/mul/monus/rsh) through two recycled
  // temporaries: exercises the pooled buffers, in-place execution, and
  // the hoisted arith dispatch.
  Assembler a;
  a.reserve_regs(2);
  auto u = a.reg(), v = a.reg();
  const ArithOp ops[4] = {ArithOp::Add, ArithOp::Mul, ArithOp::Monus,
                          ArithOp::Rsh};
  a.arith(u, ArithOp::Add, 0, 1);
  a.arith(v, ArithOp::Mul, u, 0);
  for (int i = 0; i < 14; ++i) {
    if (i % 2 == 0) {
      a.arith(u, ops[i % 4], v, 1);
    } else {
      a.arith(v, ops[i % 4], u, 0);
    }
  }
  a.move(0, v);
  a.halt();
  auto p = a.finish(2, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"arith-mix", std::move(p), {iota_mod(n, 1000), iota_mod(n, 60)}};
}

Case make_fuse_chain(std::size_t n) {
  // The fusion showcase: a 28-op elementwise pipeline -- Enumerate
  // feeding a long Add/Mul/Monus/Rsh chain through two recycled
  // temporaries.  Every intermediate dies inside the group, so the
  // fused engine builds one output stream instead of 27 register-sized
  // buffers, and the whole working set stays in two L1 scratch rows.
  Assembler a;
  a.reserve_regs(2);
  auto e = a.reg(), u = a.reg(), v = a.reg();
  a.enumerate(e, 0);
  a.arith(u, ArithOp::Add, 0, e);
  a.arith(v, ArithOp::Mul, u, 1);
  const ArithOp ops[4] = {ArithOp::Add, ArithOp::Mul, ArithOp::Monus,
                          ArithOp::Rsh};
  for (int i = 0; i < 24; ++i) {
    if (i % 2 == 0) {
      a.arith(u, ops[i % 4], v, 0);
    } else {
      a.arith(v, ops[i % 4], u, 1);
    }
  }
  a.move(0, v);
  a.halt();
  auto p = a.finish(2, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"fuse-chain", std::move(p), {iota_mod(n, 1000), iota_mod(n, 60)}};
}

Case make_scan_chain(std::size_t n) {
  Assembler a;
  a.reserve_regs(1);
  auto u = a.reg(), v = a.reg();
  a.scan_plus(u, 0);
  for (int i = 0; i < 11; ++i) {
    if (i % 2 == 0) {
      a.scan_plus(v, u);
    } else {
      a.scan_plus(u, v);
    }
  }
  a.move(0, u);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"scan-chain", std::move(p), {iota_mod(n, 3)}};
}

Case make_select(std::size_t n) {
  Assembler a;
  a.reserve_regs(1);
  auto t = a.reg();
  for (int i = 0; i < 10; ++i) a.select(t, 0);
  a.move(0, t);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"select-half", std::move(p), {iota_mod(n, 2)}};
}

Case make_append(std::size_t n) {
  Assembler a;
  a.reserve_regs(1);
  auto t = a.reg();
  for (int i = 0; i < 8; ++i) a.append(t, 0, 0);
  a.move(0, t);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"append-double", std::move(p), {iota_mod(n, 1u << 16)}};
}

Case make_route_broadcast(std::size_t n) {
  // The compiler's ones_like: bm-route with a single count of n --
  // maximum skew, the adversary for count-partitioned scatters.
  Assembler a;
  a.reserve_regs(1);
  auto one = a.reg(), len = a.reg(), t = a.reg();
  a.load_const(one, 7);
  a.length(len, 0);
  for (int i = 0; i < 8; ++i) a.bm_route(t, 0, len, one);
  a.move(0, t);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"route-broadcast", std::move(p), {iota_mod(n, 10)}};
}

Case make_route_pack(std::size_t n) {
  // pack_vec: select the 0/1 bits, then bm-route the data through them.
  Assembler a;
  a.reserve_regs(2);  // V0 = data, V1 = bits
  auto bound = a.reg(), t = a.reg();
  a.select(bound, 1);
  for (int i = 0; i < 6; ++i) a.bm_route(t, bound, 1, 0);
  a.move(0, t);
  a.halt();
  auto p = a.finish(2, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"route-pack", std::move(p), {iota_mod(n, 1u << 16), iota_mod(n, 2)}};
}

Case make_sbm_cartesian(std::size_t n) {
  // One segment of sqrt(n) elements replicated sqrt(n) times: the
  // flattened cartesian product, skew-adversarial for sbm-route.
  const std::size_t m = std::max<std::size_t>(1, nsc::isqrt(n));
  Assembler a;
  auto bound = a.reg();   // V0: k zeros
  auto counts = a.reg();  // V1: [k]
  auto data = a.reg();    // V2: m values
  auto segs = a.reg();    // V3: [m]
  auto t = a.reg();
  for (int i = 0; i < 4; ++i) a.sbm_route(t, bound, counts, data, segs);
  a.move(0, t);
  a.halt();
  auto p = a.finish(4, 1);
  nsc::opt::annotate_last_use(p);
  nsc::opt::annotate_fusion(p);
  return {"sbm-cartesian", std::move(p),
          {Vec(m, 0), Vec{m}, iota_mod(m, 1u << 16), Vec{m}}};
}

// ---------------------------------------------------------------------------
// compiled corpus
// ---------------------------------------------------------------------------

Case make_compiled(const std::string& name, const L::FuncRef& f,
                   const ValueRef& arg) {
  auto [dom, cod] = L::check_func(f);
  (void)cod;
  auto p = nsc::sa::compile_nsc(f);  // O2; arrives annotated
  return {name, std::move(p), nsc::sa::encode_value(arg, dom)};
}

Case make_corpus_index(std::size_t n) {
  Vec c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = 2 * i;
  auto arg = Value::pair(Value::nat_seq(c),
                         Value::nat_seq({0, n / 3, n / 2, n - 1}));
  return make_compiled("compiled:index", P::index(Type::nat()), arg);
}

Case make_corpus_filter_map(std::size_t n) {
  const TypeRef N = Type::nat();
  auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(512)); });
  auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef x) {
    return L::apply(L::map_f(dbl), L::apply(P::filter(keep, N), x));
  });
  nsc::SplitMix64 rng(5);
  return make_compiled("compiled:filter-map", f,
                       Value::nat_seq(rng.vec(n, 1024)));
}

Case make_corpus_sum(std::size_t n) {
  return make_compiled("compiled:sum-while", P::sum_nats(),
                       Value::nat_seq(Vec(n, 3)));
}

Case make_corpus_quickstart(std::size_t n) {
  // examples/quickstart.cpp: filter, then zip positions with squares.
  const TypeRef N = Type::nat();
  auto small = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(10)); });
  auto square = L::lam(N, [](L::TermRef v) { return L::mul(v, v); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef xs) {
    L::TermRef kept = L::apply(P::filter(small, N), xs);
    return L::let_in(Type::seq(N), kept, [&](L::TermRef k) {
      return L::zip(L::enumerate(k), L::apply(L::map_f(square), k));
    });
  });
  return make_compiled("compiled:quickstart", f,
                       Value::nat_seq(iota_mod(n, 20)));
}

Case make_corpus_nested_query(std::size_t n) {
  // examples/nested_query.cpp: per-department filter + (length, sum) --
  // genuine nested data parallelism (a lifted inner filter/sum under map).
  const TypeRef N = Type::nat();
  const TypeRef Dept = Type::seq(N);
  auto well_paid =
      L::lam(N, [](L::TermRef s) { return L::leq(L::nat(50), s); });
  auto per_dept = L::lam(Dept, [&](L::TermRef d) {
    L::TermRef kept = L::apply(P::filter(well_paid, N), d);
    return L::let_in(Type::seq(N), kept, [&](L::TermRef k) {
      return L::pair(L::length(k), L::apply(P::sum_nats(), k));
    });
  });
  auto query = L::lam(Type::seq(Dept), [&](L::TermRef db) {
    return L::apply(L::map_f(per_dept), db);
  });
  // sqrt(n) departments of sqrt(n) salaries: n total elements.
  const std::size_t m = std::max<std::size_t>(1, nsc::isqrt(n));
  std::vector<ValueRef> depts;
  nsc::SplitMix64 rng(17);
  for (std::size_t d = 0; d < m; ++d) {
    depts.push_back(Value::nat_seq(rng.vec(m, 100)));
  }
  return make_compiled("compiled:nested-query", query, Value::seq(depts));
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

double wall_ms_once(const Program& p, const std::vector<Vec>& in,
                    const RunConfig& cfg, bool v2) {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult res = v2 ? nsc::bvram::run(p, in, cfg)
                     : nsc::bvram::run_reference(p, in, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  (void)res;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Options {
  std::string json_path = "BENCH_machine.json";
  int reps = 3;
  std::size_t scale = 0;  // 0 = default sweep
  bool full = false;
};

int run_bench(const Options& opt) {
  std::vector<std::size_t> sizes = {100000, 1000000};
  if (opt.full) sizes.push_back(10000000);
  if (opt.scale != 0) sizes = {opt.scale};

  // The six configurations.  v1 ignores cfg.fuse (the reference
  // interpreter has no fusion), so the v1 rows double as the oracle the
  // fused rows must match bit-for-bit.
  struct Config {
    const char* engine;
    const char* backend;
    bool v2, par, fuse;
  };
  constexpr std::size_t kConfigs = 6;
  const Config cfgs[kConfigs] = {
      {"v1", "serial", false, false, false},
      {"v1", "parallel", false, true, false},
      {"v2", "serial", true, false, false},
      {"v2", "parallel", true, true, false},
      {"v2", "serial", true, false, true},
      {"v2", "parallel", true, true, true},
  };

  std::vector<Entry> entries;
  struct Summary {
    std::string bench;
    std::size_t n;
    double ms[kConfigs] = {};
    // Fused-group counters from the fused/serial configuration's
    // profiled validation run.
    std::uint64_t groups = 0, instrs = 0, elided = 0, fallbacks = 0;
  };
  std::vector<Summary> summaries;
  bool mismatch = false;

  using Maker = Case (*)(std::size_t);
  const Maker makers[] = {
      make_move_chain,   make_arith_mix,      make_fuse_chain,
      make_scan_chain,   make_select,         make_append,
      make_route_broadcast, make_route_pack,  make_sbm_cartesian,
      make_corpus_index, make_corpus_filter_map, make_corpus_sum,
      make_corpus_quickstart, make_corpus_nested_query,
  };

  Table t({"bench", "n", "v1 serial", "v2 serial", "v2f serial", "v2f par",
           "fuse serial", "v2f/v1 serial"});
  for (std::size_t n : sizes) {
    for (auto make : makers) {
      Case c = make(n);
      Summary s;
      s.bench = c.name;
      s.n = n;
      Entry base;
      RunConfig run_cfgs[kConfigs];
      for (std::size_t ci = 0; ci < kConfigs; ++ci) {
        RunConfig cfg;
        cfg.parallel_backend = cfgs[ci].par;
        cfg.fuse = cfgs[ci].fuse;
        // Untimed validation run: outputs + costs feed the checksum, and
        // -- for the fused/serial configuration -- a profiled pass
        // collects the engine's fused-group counters (profiling changes
        // no output or cost, only wall-clock bookkeeping).
        const bool v2 = cfgs[ci].v2;
        const bool want_counters =
            cfgs[ci].fuse && !cfgs[ci].par;
        cfg.profile = want_counters;
        RunResult r = v2 ? nsc::bvram::run(c.program, c.inputs, cfg)
                         : nsc::bvram::run_reference(c.program, c.inputs,
                                                     cfg);
        if (want_counters) {
          s.groups = r.engine.fused_groups;
          s.instrs = r.engine.fused_instrs;
          s.elided = r.engine.fused_elided;
          s.fallbacks = r.engine.fused_fallbacks;
        }
        cfg.profile = false;
        run_cfgs[ci] = cfg;
        Entry e;
        e.bench = c.name;
        e.n = n;
        e.engine = cfgs[ci].engine;
        e.backend = cfgs[ci].backend;
        e.fuse = cfgs[ci].fuse;
        e.time = r.cost.time;
        e.work = r.cost.work;
        e.checksum = checksum(r);
        if (ci == 0) base = e;
        if (e.checksum != base.checksum || e.time != base.time ||
            e.work != base.work) {
          std::fprintf(stderr,
                       "MISMATCH: %s n=%zu %s/%s%s disagrees with v1/serial "
                       "(checksum %016llx vs %016llx, T %llu vs %llu, W "
                       "%llu vs %llu)\n",
                       c.name.c_str(), n, e.engine, e.backend,
                       e.fuse ? "/fused" : "",
                       static_cast<unsigned long long>(e.checksum),
                       static_cast<unsigned long long>(base.checksum),
                       static_cast<unsigned long long>(e.time),
                       static_cast<unsigned long long>(base.time),
                       static_cast<unsigned long long>(e.work),
                       static_cast<unsigned long long>(base.work));
          mismatch = true;
        }
        entries.push_back(std::move(e));
      }
      // Timing rounds are interleaved across configurations (rep-major,
      // best-of-reps) so slow clock drift or a noisy co-tenant biases
      // every configuration equally instead of whichever ran last.
      for (std::size_t ci = 0; ci < kConfigs; ++ci) s.ms[ci] = 1e300;
      for (int rep = 0; rep < opt.reps; ++rep) {
        for (std::size_t ci = 0; ci < kConfigs; ++ci) {
          s.ms[ci] = std::min(
              s.ms[ci], wall_ms_once(c.program, c.inputs, run_cfgs[ci],
                                     cfgs[ci].v2));
        }
      }
      for (std::size_t ci = 0; ci < kConfigs; ++ci) {
        entries[entries.size() - kConfigs + ci].ms = s.ms[ci];
      }
      summaries.push_back(s);
      t.row({c.name, std::to_string(n), Table::fixed(s.ms[0], 2),
             Table::fixed(s.ms[2], 2), Table::fixed(s.ms[4], 2),
             Table::fixed(s.ms[5], 2), Table::fixed(s.ms[2] / s.ms[4], 2),
             Table::fixed(s.ms[0] / s.ms[4], 2)});
    }
  }
  t.print();
  // Geometric-mean speedups over the compiled example corpus at the
  // largest measured n (the acceptance-criterion aggregate).  "v2" here
  // is the engine's default configuration, which now includes fusion.
  const std::size_t n_max = sizes.back();
  double log_serial = 0, log_par = 0;
  std::size_t corpus_count = 0;
  for (const auto& s : summaries) {
    if (s.n != n_max || s.bench.rfind("compiled:", 0) != 0) continue;
    log_serial += std::log(s.ms[0] / s.ms[4]);
    log_par += std::log(s.ms[0] / s.ms[5]);
    ++corpus_count;
  }
  const double geo_serial =
      corpus_count > 0 ? std::exp(log_serial / corpus_count) : 0;
  const double geo_par = corpus_count > 0 ? std::exp(log_par / corpus_count) : 0;
  std::printf(
      "\ncompiled corpus at n=%zu: geomean serial v2/v1 = %.2fx, "
      "parallel v2/v1-serial = %.2fx\n",
      n_max, geo_serial, geo_par);
  std::printf("\nfusion at n=%zu (serial, unfused -> fused):\n", n_max);
  for (const auto& s : summaries) {
    if (s.n != n_max || s.groups == 0) continue;
    std::printf(
        "  %-24s %7.2f -> %7.2f ms  (%.2fx; %llu groups / %llu instrs, "
        "%llu buffers elided, %llu fallbacks)\n",
        s.bench.c_str(), s.ms[2], s.ms[4], s.ms[2] / s.ms[4],
        static_cast<unsigned long long>(s.groups),
        static_cast<unsigned long long>(s.instrs),
        static_cast<unsigned long long>(s.elided),
        static_cast<unsigned long long>(s.fallbacks));
  }
  std::printf(
      "\nreading: 'fuse serial' is the fusion win over the already-pooled\n"
      "v2 engine; 'v2f/v1 serial' is the cumulative win over the\n"
      "reference interpreter (%zu workers for the parallel rows).\n"
      "All six configurations produced bit-identical outputs, T, and W.\n",
      nsc::parallel_workers());

  // ---- JSON ----
  nsc::obs::BenchReport report(opt.json_path, "bvram-bench-machine/v3");
  if (!report.ok()) return 1;
  std::FILE* f = report.out();
  std::fprintf(f, "  \"workers\": %zu,\n  \"reps\": %d,\n",
               nsc::parallel_workers(), opt.reps);
  std::fprintf(f,
               "  \"corpus_n\": %zu,\n"
               "  \"corpus_geomean_serial_speedup\": %.2f,\n"
               "  \"corpus_geomean_parallel_speedup\": %.2f,\n",
               n_max, geo_serial, geo_par);
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"n\": %zu, \"engine\": \"%s\", "
                 "\"backend\": \"%s\", \"fuse\": %s, \"ms\": %.3f, "
                 "\"T\": %llu, \"W\": %llu, \"checksum\": \"%016llx\"}%s\n",
                 e.bench.c_str(), e.n, e.engine, e.backend,
                 e.fuse ? "true" : "false", e.ms,
                 static_cast<unsigned long long>(e.time),
                 static_cast<unsigned long long>(e.work),
                 static_cast<unsigned long long>(e.checksum),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": [\n");
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"n\": %zu, "
                 "\"v1_serial_ms\": %.3f, \"v2_serial_ms\": %.3f, "
                 "\"v2_fused_serial_ms\": %.3f, "
                 "\"v1_parallel_ms\": %.3f, \"v2_parallel_ms\": %.3f, "
                 "\"v2_fused_parallel_ms\": %.3f, "
                 "\"v2_serial_speedup\": %.2f, "
                 "\"fused_serial_speedup\": %.2f, "
                 "\"fused_groups\": %llu, \"fused_instrs\": %llu, "
                 "\"fused_elided\": %llu, \"fused_fallbacks\": %llu}%s\n",
                 s.bench.c_str(), s.n, s.ms[0], s.ms[2], s.ms[4], s.ms[1],
                 s.ms[3], s.ms[5], s.ms[0] / s.ms[2], s.ms[2] / s.ms[4],
                 static_cast<unsigned long long>(s.groups),
                 static_cast<unsigned long long>(s.instrs),
                 static_cast<unsigned long long>(s.elided),
                 static_cast<unsigned long long>(s.fallbacks),
                 i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mismatch\": %s\n", mismatch ? "true" : "false");
  report.close();

  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      opt.reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--scale" && i + 1 < argc) {
      opt.scale = static_cast<std::size_t>(
          std::max(1ll, std::atoll(argv[++i])));
    } else if (arg == "--full") {
      opt.full = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_machine [--json PATH] [--reps K] "
                   "[--scale N] [--full]\n");
      return 2;
    }
  }
  std::printf(
      "bench_machine: BVRAM execution engine v1 (reference) vs v2, with\n"
      "and without fused elementwise groups; wall-clock best of %d,\n"
      "outputs/T/W cross-checked across all six configurations.\n\n",
      opt.reps);
  return run_bench(opt);
}
