// The execution-engine benchmark harness: runs the compiled example
// corpus plus adversarial route/scan microbenchmarks under all four
// configurations --
//
//     v1 = run_reference (allocate-per-instruction interpreter)
//     v2 = run            (pooled register file, in-place kernels)
//     x  serial | parallel backend
//
// -- verifies that outputs, T, and W agree bit-for-bit across every
// configuration (exit code 1 on any mismatch: the CI perf-smoke gate),
// and writes the wall-clock trajectory to a JSON file so future PRs can
// compare machine-readable numbers instead of prose.
//
//   bench_machine [--json PATH] [--reps K] [--full]
//
// --full adds n = 10^7 to the default {10^5, 10^6} sweep.  Timing rows
// are never part of the failure criterion (shared runners are noisy);
// only cross-configuration output/cost mismatches fail.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bvram/machine.hpp"
#include "nsc/build.hpp"
#include "nsc/prelude.hpp"
#include "obs/provenance.hpp"
#include "nsc/typecheck.hpp"
#include "opt/liveness.hpp"
#include "sa/compile.hpp"
#include "sa/layout.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using nsc::Table;
using nsc::Type;
using nsc::TypeRef;
using nsc::Value;
using nsc::ValueRef;
using nsc::bvram::Assembler;
using nsc::bvram::Program;
using nsc::bvram::RunConfig;
using nsc::bvram::RunResult;
using Vec = std::vector<std::uint64_t>;
using nsc::lang::ArithOp;

struct Case {
  std::string name;
  Program program;  // annotated (v1 ignores the annotation)
  std::vector<Vec> inputs;
};

struct Entry {
  std::string bench;
  std::size_t n;
  const char* engine;
  const char* backend;
  double ms = 0;
  std::uint64_t time = 0;
  std::uint64_t work = 0;
  std::uint64_t checksum = 0;
};

std::uint64_t checksum(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (const auto& v : r.outputs) {
    mix(v.size());
    for (auto x : v) mix(x);
  }
  mix(r.cost.time);
  mix(r.cost.work);
  return h;
}

Vec iota_mod(std::size_t n, std::uint64_t mod) {
  Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (i * 2654435761u) % mod;
  return v;
}

// ---------------------------------------------------------------------------
// microbenchmarks (hand-assembled adversaries)
// ---------------------------------------------------------------------------

Case make_move_chain(std::size_t n) {
  // 24 Moves cycling 4 temporaries: with last-use annotation every one is
  // an O(1) buffer swap; v1 copies 24n words through 24 fresh allocations.
  Assembler a;
  a.reserve_regs(1);
  std::uint32_t t[4];
  for (auto& r : t) r = a.reg();
  a.move(t[0], 0);
  for (int i = 1; i < 24; ++i) a.move(t[i % 4], t[(i - 1) % 4]);
  a.move(0, t[23 % 4]);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  return {"move-chain", std::move(p), {iota_mod(n, 1u << 20)}};
}

Case make_arith_mix(std::size_t n) {
  // A 16-op elementwise chain (add/mul/monus/rsh) through two recycled
  // temporaries: exercises the pooled buffers, in-place execution, and
  // the hoisted arith dispatch.
  Assembler a;
  a.reserve_regs(2);
  auto u = a.reg(), v = a.reg();
  const ArithOp ops[4] = {ArithOp::Add, ArithOp::Mul, ArithOp::Monus,
                          ArithOp::Rsh};
  a.arith(u, ArithOp::Add, 0, 1);
  a.arith(v, ArithOp::Mul, u, 0);
  for (int i = 0; i < 14; ++i) {
    if (i % 2 == 0) {
      a.arith(u, ops[i % 4], v, 1);
    } else {
      a.arith(v, ops[i % 4], u, 0);
    }
  }
  a.move(0, v);
  a.halt();
  auto p = a.finish(2, 1);
  nsc::opt::annotate_last_use(p);
  return {"arith-mix", std::move(p), {iota_mod(n, 1000), iota_mod(n, 60)}};
}

Case make_scan_chain(std::size_t n) {
  Assembler a;
  a.reserve_regs(1);
  auto u = a.reg(), v = a.reg();
  a.scan_plus(u, 0);
  for (int i = 0; i < 11; ++i) {
    if (i % 2 == 0) {
      a.scan_plus(v, u);
    } else {
      a.scan_plus(u, v);
    }
  }
  a.move(0, u);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  return {"scan-chain", std::move(p), {iota_mod(n, 3)}};
}

Case make_select(std::size_t n) {
  Assembler a;
  a.reserve_regs(1);
  auto t = a.reg();
  for (int i = 0; i < 10; ++i) a.select(t, 0);
  a.move(0, t);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  return {"select-half", std::move(p), {iota_mod(n, 2)}};
}

Case make_append(std::size_t n) {
  Assembler a;
  a.reserve_regs(1);
  auto t = a.reg();
  for (int i = 0; i < 8; ++i) a.append(t, 0, 0);
  a.move(0, t);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  return {"append-double", std::move(p), {iota_mod(n, 1u << 16)}};
}

Case make_route_broadcast(std::size_t n) {
  // The compiler's ones_like: bm-route with a single count of n --
  // maximum skew, the adversary for count-partitioned scatters.
  Assembler a;
  a.reserve_regs(1);
  auto one = a.reg(), len = a.reg(), t = a.reg();
  a.load_const(one, 7);
  a.length(len, 0);
  for (int i = 0; i < 8; ++i) a.bm_route(t, 0, len, one);
  a.move(0, t);
  a.halt();
  auto p = a.finish(1, 1);
  nsc::opt::annotate_last_use(p);
  return {"route-broadcast", std::move(p), {iota_mod(n, 10)}};
}

Case make_route_pack(std::size_t n) {
  // pack_vec: select the 0/1 bits, then bm-route the data through them.
  Assembler a;
  a.reserve_regs(2);  // V0 = data, V1 = bits
  auto bound = a.reg(), t = a.reg();
  a.select(bound, 1);
  for (int i = 0; i < 6; ++i) a.bm_route(t, bound, 1, 0);
  a.move(0, t);
  a.halt();
  auto p = a.finish(2, 1);
  nsc::opt::annotate_last_use(p);
  return {"route-pack", std::move(p), {iota_mod(n, 1u << 16), iota_mod(n, 2)}};
}

Case make_sbm_cartesian(std::size_t n) {
  // One segment of sqrt(n) elements replicated sqrt(n) times: the
  // flattened cartesian product, skew-adversarial for sbm-route.
  const std::size_t m = std::max<std::size_t>(1, nsc::isqrt(n));
  Assembler a;
  auto bound = a.reg();   // V0: k zeros
  auto counts = a.reg();  // V1: [k]
  auto data = a.reg();    // V2: m values
  auto segs = a.reg();    // V3: [m]
  auto t = a.reg();
  for (int i = 0; i < 4; ++i) a.sbm_route(t, bound, counts, data, segs);
  a.move(0, t);
  a.halt();
  auto p = a.finish(4, 1);
  nsc::opt::annotate_last_use(p);
  return {"sbm-cartesian", std::move(p),
          {Vec(m, 0), Vec{m}, iota_mod(m, 1u << 16), Vec{m}}};
}

// ---------------------------------------------------------------------------
// compiled corpus
// ---------------------------------------------------------------------------

Case make_compiled(const std::string& name, const L::FuncRef& f,
                   const ValueRef& arg) {
  auto [dom, cod] = L::check_func(f);
  (void)cod;
  auto p = nsc::sa::compile_nsc(f);  // O2; arrives annotated
  return {name, std::move(p), nsc::sa::encode_value(arg, dom)};
}

Case make_corpus_index(std::size_t n) {
  Vec c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = 2 * i;
  auto arg = Value::pair(Value::nat_seq(c),
                         Value::nat_seq({0, n / 3, n / 2, n - 1}));
  return make_compiled("compiled:index", P::index(Type::nat()), arg);
}

Case make_corpus_filter_map(std::size_t n) {
  const TypeRef N = Type::nat();
  auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(512)); });
  auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef x) {
    return L::apply(L::map_f(dbl), L::apply(P::filter(keep, N), x));
  });
  nsc::SplitMix64 rng(5);
  return make_compiled("compiled:filter-map", f,
                       Value::nat_seq(rng.vec(n, 1024)));
}

Case make_corpus_sum(std::size_t n) {
  return make_compiled("compiled:sum-while", P::sum_nats(),
                       Value::nat_seq(Vec(n, 3)));
}

Case make_corpus_quickstart(std::size_t n) {
  // examples/quickstart.cpp: filter, then zip positions with squares.
  const TypeRef N = Type::nat();
  auto small = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(10)); });
  auto square = L::lam(N, [](L::TermRef v) { return L::mul(v, v); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef xs) {
    L::TermRef kept = L::apply(P::filter(small, N), xs);
    return L::let_in(Type::seq(N), kept, [&](L::TermRef k) {
      return L::zip(L::enumerate(k), L::apply(L::map_f(square), k));
    });
  });
  return make_compiled("compiled:quickstart", f,
                       Value::nat_seq(iota_mod(n, 20)));
}

Case make_corpus_nested_query(std::size_t n) {
  // examples/nested_query.cpp: per-department filter + (length, sum) --
  // genuine nested data parallelism (a lifted inner filter/sum under map).
  const TypeRef N = Type::nat();
  const TypeRef Dept = Type::seq(N);
  auto well_paid =
      L::lam(N, [](L::TermRef s) { return L::leq(L::nat(50), s); });
  auto per_dept = L::lam(Dept, [&](L::TermRef d) {
    L::TermRef kept = L::apply(P::filter(well_paid, N), d);
    return L::let_in(Type::seq(N), kept, [&](L::TermRef k) {
      return L::pair(L::length(k), L::apply(P::sum_nats(), k));
    });
  });
  auto query = L::lam(Type::seq(Dept), [&](L::TermRef db) {
    return L::apply(L::map_f(per_dept), db);
  });
  // sqrt(n) departments of sqrt(n) salaries: n total elements.
  const std::size_t m = std::max<std::size_t>(1, nsc::isqrt(n));
  std::vector<ValueRef> depts;
  nsc::SplitMix64 rng(17);
  for (std::size_t d = 0; d < m; ++d) {
    depts.push_back(Value::nat_seq(rng.vec(m, 100)));
  }
  return make_compiled("compiled:nested-query", query, Value::seq(depts));
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

double wall_ms(const Program& p, const std::vector<Vec>& in,
               const RunConfig& cfg, bool v2, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    RunResult res = v2 ? nsc::bvram::run(p, in, cfg)
                       : nsc::bvram::run_reference(p, in, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    (void)res;
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Options {
  std::string json_path = "BENCH_machine.json";
  int reps = 3;
  bool full = false;
};

int run_bench(const Options& opt) {
  std::vector<std::size_t> sizes = {100000, 1000000};
  if (opt.full) sizes.push_back(10000000);

  std::vector<Entry> entries;
  struct Summary {
    std::string bench;
    std::size_t n;
    double ms[2][2];  // [engine v1/v2][backend serial/parallel]
  };
  std::vector<Summary> summaries;
  bool mismatch = false;

  using Maker = Case (*)(std::size_t);
  const Maker makers[] = {
      make_move_chain,   make_arith_mix,      make_scan_chain,
      make_select,       make_append,         make_route_broadcast,
      make_route_pack,   make_sbm_cartesian,  make_corpus_index,
      make_corpus_filter_map, make_corpus_sum, make_corpus_quickstart,
      make_corpus_nested_query,
  };

  Table t({"bench", "n", "v1 serial", "v2 serial", "v1 par", "v2 par",
           "v2/v1 serial", "v2par/v1 serial"});
  for (std::size_t n : sizes) {
    for (auto make : makers) {
      Case c = make(n);
      Summary s{c.name, n, {{0, 0}, {0, 0}}};
      std::uint64_t sums[2][2] = {{0, 0}, {0, 0}};
      Entry base;
      for (int engine = 0; engine < 2; ++engine) {
        for (int backend = 0; backend < 2; ++backend) {
          RunConfig cfg;
          cfg.parallel_backend = backend == 1;
          const bool v2 = engine == 1;
          // Untimed validation run: outputs + costs feed the checksum.
          RunResult r = v2 ? nsc::bvram::run(c.program, c.inputs, cfg)
                           : nsc::bvram::run_reference(c.program, c.inputs,
                                                       cfg);
          Entry e;
          e.bench = c.name;
          e.n = n;
          e.engine = v2 ? "v2" : "v1";
          e.backend = backend == 1 ? "parallel" : "serial";
          e.time = r.cost.time;
          e.work = r.cost.work;
          e.checksum = checksum(r);
          e.ms = wall_ms(c.program, c.inputs, cfg, v2, opt.reps);
          s.ms[engine][backend] = e.ms;
          sums[engine][backend] = e.checksum;
          if (engine == 0 && backend == 0) base = e;
          if (e.checksum != sums[0][0] || e.time != base.time ||
              e.work != base.work) {
            std::fprintf(stderr,
                         "MISMATCH: %s n=%zu %s/%s disagrees with v1/serial "
                         "(checksum %016llx vs %016llx, T %llu vs %llu, W "
                         "%llu vs %llu)\n",
                         c.name.c_str(), n, e.engine, e.backend,
                         static_cast<unsigned long long>(e.checksum),
                         static_cast<unsigned long long>(sums[0][0]),
                         static_cast<unsigned long long>(e.time),
                         static_cast<unsigned long long>(base.time),
                         static_cast<unsigned long long>(e.work),
                         static_cast<unsigned long long>(base.work));
            mismatch = true;
          }
          entries.push_back(std::move(e));
        }
      }
      summaries.push_back(s);
      t.row({c.name, std::to_string(n), Table::fixed(s.ms[0][0], 2),
             Table::fixed(s.ms[1][0], 2), Table::fixed(s.ms[0][1], 2),
             Table::fixed(s.ms[1][1], 2),
             Table::fixed(s.ms[0][0] / s.ms[1][0], 2),
             Table::fixed(s.ms[0][0] / s.ms[1][1], 2)});
    }
  }
  t.print();
  // Geometric-mean speedups over the compiled example corpus at the
  // largest measured n (the acceptance-criterion aggregate).
  const std::size_t n_max = sizes.back();
  double log_serial = 0, log_par = 0;
  std::size_t corpus_count = 0;
  for (const auto& s : summaries) {
    if (s.n != n_max || s.bench.rfind("compiled:", 0) != 0) continue;
    log_serial += std::log(s.ms[0][0] / s.ms[1][0]);
    log_par += std::log(s.ms[0][0] / s.ms[1][1]);
    ++corpus_count;
  }
  const double geo_serial =
      corpus_count > 0 ? std::exp(log_serial / corpus_count) : 0;
  const double geo_par = corpus_count > 0 ? std::exp(log_par / corpus_count) : 0;
  std::printf(
      "\ncompiled corpus at n=%zu: geomean serial v2/v1 = %.2fx, "
      "parallel v2/v1-serial = %.2fx\n",
      n_max, geo_serial, geo_par);
  std::printf(
      "\nreading: 'v2/v1 serial' is the allocation/copy-elimination win\n"
      "alone; 'v2par/v1 serial' adds the parallel backend (%zu workers).\n"
      "All four configurations produced bit-identical outputs, T, and W.\n",
      nsc::parallel_workers());

  // ---- JSON ----
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"bvram-bench-machine/v2\",\n");
  std::fprintf(f, "  \"provenance\": %s,\n",
               nsc::obs::Provenance::collect().to_json().c_str());
  std::fprintf(f, "  \"workers\": %zu,\n  \"reps\": %d,\n",
               nsc::parallel_workers(), opt.reps);
  std::fprintf(f,
               "  \"corpus_n\": %zu,\n"
               "  \"corpus_geomean_serial_speedup\": %.2f,\n"
               "  \"corpus_geomean_parallel_speedup\": %.2f,\n",
               n_max, geo_serial, geo_par);
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"n\": %zu, \"engine\": \"%s\", "
                 "\"backend\": \"%s\", \"ms\": %.3f, \"T\": %llu, "
                 "\"W\": %llu, \"checksum\": \"%016llx\"}%s\n",
                 e.bench.c_str(), e.n, e.engine, e.backend, e.ms,
                 static_cast<unsigned long long>(e.time),
                 static_cast<unsigned long long>(e.work),
                 static_cast<unsigned long long>(e.checksum),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": [\n");
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"n\": %zu, "
                 "\"v1_serial_ms\": %.3f, \"v2_serial_ms\": %.3f, "
                 "\"v1_parallel_ms\": %.3f, \"v2_parallel_ms\": %.3f, "
                 "\"v2_serial_speedup\": %.2f, "
                 "\"v2_parallel_speedup\": %.2f}%s\n",
                 s.bench.c_str(), s.n, s.ms[0][0], s.ms[1][0], s.ms[0][1],
                 s.ms[1][1], s.ms[0][0] / s.ms[1][0],
                 s.ms[0][0] / s.ms[1][1],
                 i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mismatch\": %s\n}\n",
               mismatch ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());

  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      opt.reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--full") {
      opt.full = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_machine [--json PATH] [--reps K] [--full]\n");
      return 2;
    }
  }
  std::printf(
      "bench_machine: BVRAM execution engine v1 (reference) vs v2\n"
      "(pooled register file, in-place kernels, parallel primitives);\n"
      "wall-clock best of %d, outputs/T/W cross-checked.\n\n",
      opt.reps);
  return run_bench(opt);
}
